"""Command-line interface: run protocol sessions from a shell.

Examples::

    python -m repro dkg --n 10 --t 3 --seed 7
    python -m repro vss --n 7 --t 2 --secret 42 --reconstruct
    python -m repro renew --n 7 --t 2 --phases 3
    python -m repro renew --n 5 --t 1 --transport tcp --crash 3@2+25
    python -m repro groupmod --n 5 --t 1 --transport tcp
    python -m repro resilience --t 2 --f 1
    python -m repro cluster --n 7 --t 2 --seed 7        # real asyncio TCP
    python -m repro cluster --n 7 --t 2 --f 1 --crash 7@2
    python -m repro serve --n 7 --t 2 --port 7710       # threshold service
    python -m repro serve --n 7 --t 2 --port 7710 --metrics-port 9100
    python -m repro serve --n 4 --t 1 --shards 4        # sharded fleet
    python -m repro shardctl status --port 7710         # shard map
    python -m repro shardctl add --port 7710            # grow the fleet
    python -m repro shardctl drain --shard shard-1 --port 7710
    python -m repro ops --port 7710                     # live metrics snapshot
    python -m repro ops --port 7710 --fleet             # aggregated fleet view
    python -m repro loadgen --port 7710 --clients 32 --requests 4
    python -m repro dkg --n 7 --t 2 --trace-out run.jsonl   # flight recorder
    python -m repro replay run.jsonl                    # bit-identical re-run
    python -m repro trace run.jsonl                     # latency/flow analysis
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

from repro.crypto.backend import element_hex
from repro.crypto.groups import BACKENDS, group_by_name
from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec
from repro.dkg import DkgConfig, run_dkg
from repro.proactive import ProactiveSystem
from repro.sim.adversary import Adversary
from repro.vss import VssConfig, run_vss


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=7, help="number of nodes")
    parser.add_argument("--t", type=int, default=2, help="Byzantine threshold")
    parser.add_argument("--f", type=int, default=0, help="crash limit")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--group", default="toy",
        help="modp parameters: toy/small/medium/large, or the RFC 5114 "
             "constants rfc5114-1024-160 / rfc5114-2048-256",
    )
    parser.add_argument(
        "--backend", default="modp", choices=BACKENDS,
        help="group backend: modp Schnorr subgroups (sized by --group) "
             "or the secp256k1 elliptic curve",
    )
    parser.add_argument(
        "--hashed-codec", action="store_true",
        help="use the Cachin-style hash-compressed commitment codec",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )


def _codec(args: argparse.Namespace):
    return HashedMatrixCodec() if args.hashed_codec else FullMatrixCodec()


def _group(args: argparse.Namespace):
    """Resolve --backend/--group: the curve backend has one fixed
    parameter set, the modp backend is sized by --group."""
    if args.backend == "secp256k1":
        return group_by_name("secp256k1")
    return group_by_name(args.group)


def _emit(args: argparse.Namespace, payload: dict) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")


def _trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE.jsonl",
        help="record a full-payload flight-recorder capture to this "
             "file (replayable with `repro replay`, analyzable with "
             "`repro trace`)",
    )


def _cores_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cores", type=int, default=1, metavar="N",
        help="process-pool width for batchable crypto: 1 = serial "
             "(default), 0 = all cores, N = explicit.  Parallelism "
             "never changes protocol transcripts",
    )


@contextmanager
def _crypto_pool(args: argparse.Namespace):
    """Install the ambient :class:`CryptoExecutor` for the wrapped run
    (no-op at --cores 1, the default)."""
    from repro.crypto import parallel

    cores = getattr(args, "cores", 1)
    if parallel.resolve_cores(cores) <= 1:
        yield None
        return
    executor = parallel.CryptoExecutor(cores=cores)
    executor.warm()
    previous = parallel.set_executor(executor)
    try:
        yield executor
    finally:
        parallel.set_executor(previous)
        executor.close()


@contextmanager
def _flight_recorder(
    args: argparse.Namespace,
    cmd: str,
    *,
    transport: str,
    config=None,
    group=None,
    **extra,
):
    """Install a payload-mode JsonlTraceSink for the wrapped run.

    The confirmation note goes to stderr: stdout may be machine-read
    ``--json`` output (the CI smoke pipes it through ``json.load``).
    """
    if getattr(args, "trace_out", None) is None:
        yield None
        return
    from repro.obs import trace as obs_trace
    from repro.obs.replay import capture_meta

    if config is not None:
        group = config.group
        meta = capture_meta(cmd, config, args.seed, transport, **extra)
    else:
        meta = {
            "cmd": cmd,
            "transport": transport,
            "seed": args.seed,
            "group": group.name,
            **extra,
        }
    sink = obs_trace.JsonlTraceSink(
        args.trace_out, payloads=True, group=group, meta=meta, mode="w"
    )
    previous = obs_trace.set_trace_sink(sink)
    try:
        yield sink
    finally:
        obs_trace.set_trace_sink(previous)
        sink.close()
        print(
            f"trace: {sink.recorded} spans captured to {args.trace_out} "
            f"(transcript {sink.transcript})",
            file=sys.stderr,
        )


def cmd_dkg(args: argparse.Namespace) -> int:
    config = DkgConfig(
        n=args.n, t=args.t, f=args.f,
        group=_group(args), codec=_codec(args),
    )
    with _flight_recorder(args, "dkg", transport="sim", config=config, tau=0):
        with _crypto_pool(args):
            result = run_dkg(
                config, seed=args.seed, reconstruct=args.reconstruct
            )
    payload = {
        "succeeded": result.succeeded,
        "q_set": list(result.q_set),
        "public_key": element_hex(config.group, result.public_key),
        "completed_nodes": result.completed_nodes,
        "completion_time": result.last_completion_time,
        "leader_changes": result.metrics.leader_changes,
        "messages": result.metrics.messages_total,
        "bytes": result.metrics.bytes_total,
    }
    if args.reconstruct:
        payload["reconstructed"] = {
            str(i): hex(v) for i, v in result.protocol_reconstructions.items()
        }
    _emit(args, payload)
    return 0 if result.succeeded else 1


def cmd_vss(args: argparse.Namespace) -> int:
    config = VssConfig(
        n=args.n, t=args.t, f=args.f,
        group=_group(args), codec=_codec(args),
    )
    result = run_vss(
        config, secret=args.secret, seed=args.seed, reconstruct=args.reconstruct
    )
    payload = {
        "completed_nodes": result.completed_nodes,
        "messages": result.metrics.messages_total,
        "bytes": result.metrics.bytes_total,
        "public_key": element_hex(
            config.group, result.agreed_commitment().public_key()
        )
        if result.shares else None,
    }
    if args.reconstruct:
        payload["reconstructions"] = {
            str(i): v for i, v in result.reconstructions.items()
        }
    _emit(args, payload)
    return 0 if len(result.completed_nodes) == args.n else 1


def _tcp_delay_model(args: argparse.Namespace):
    from repro.sim.network import UniformDelay

    if getattr(args, "latency", 0.0) > 0:
        return UniformDelay(0.5 * args.latency, 1.5 * args.latency)
    return None


def cmd_renew(args: argparse.Namespace) -> int:
    config = DkgConfig(
        n=args.n, t=args.t, f=args.f,
        group=_group(args), codec=_codec(args),
    )
    if args.transport == "tcp":
        from repro.net.proactive import run_renewal_cluster

        with _flight_recorder(
            args, "renew", transport="tcp", config=config, phases=args.phases
        ):
            result = run_renewal_cluster(
                config,
                seed=args.seed,
                phases=args.phases,
                delay_model=_tcp_delay_model(args),
                time_scale=args.time_scale,
                crash_plan=args.crash,
                timeout=args.timeout,
            )
        _emit(
            args,
            {
                "transport": "asyncio-tcp",
                "succeeded": result.succeeded,
                "public_key": element_hex(config.group, result.public_key),
                "phases": [
                    {
                        "phase": p.phase,
                        "session": p.session,
                        "renewed_nodes": p.renewed_nodes,
                        "public_key_stable": p.public_key_stable,
                        "wall_seconds": round(p.wall_seconds, 4),
                    }
                    for p in result.phases
                ],
                "crashes": result.metrics.crashes,
                "recoveries": result.metrics.recoveries,
                "secret_invariant": result.secret_invariant,
                "messages": result.metrics.messages_total,
                "bytes": result.metrics.bytes_total,
            },
        )
        return 0 if result.succeeded else 1
    # Sim renewal spins up a fresh simulation per phase, so its capture
    # is analysis-only (`repro trace`); replay needs the tcp transport.
    with _flight_recorder(
        args, "renew", transport="sim", config=config, phases=args.phases
    ):
        system = ProactiveSystem(config, seed=args.seed)
        system.bootstrap()
        secret_before = system.reconstruct()
        phases = []
        for _ in range(args.phases):
            report = system.renew()
            phases.append(
                {
                    "phase": report.phase,
                    "messages": report.metrics.messages_total,
                    "public_key_stable": report.public_key == system.public_key,
                }
            )
    _emit(
        args,
        {
            "transport": "sim",
            "public_key": element_hex(config.group, system.public_key),
            "phases": phases,
            "secret_invariant": system.reconstruct() == secret_before,
        },
    )
    return 0


def cmd_groupmod(args: argparse.Namespace) -> int:
    """§6 lifecycle: agree on an add proposal, deliver the joiner its
    share — simulated or over real asyncio TCP sockets."""
    config = DkgConfig(
        n=args.n, t=args.t, f=args.f,
        group=_group(args), codec=_codec(args),
    )
    new_node = args.new_node if args.new_node is not None else args.n + 1
    if args.transport == "tcp":
        from repro.net.groupmod import run_groupmod_cluster

        with _flight_recorder(
            args, "groupmod", transport="tcp", config=config, new_node=new_node
        ):
            result = run_groupmod_cluster(
                config,
                seed=args.seed,
                new_node=new_node,
                delay_model=_tcp_delay_model(args),
                time_scale=args.time_scale,
                crash_plan=args.crash,
                timeout=args.timeout,
            )
        _emit(
            args,
            {
                "transport": "asyncio-tcp",
                "succeeded": result.succeeded,
                "new_node": result.new_node,
                "agreement_nodes": result.agreement_nodes,
                "share_verified": result.share_verified,
                "secret_invariant": result.secret_invariant,
                "crashes": result.metrics.crashes,
                "recoveries": result.metrics.recoveries,
                "public_key": element_hex(config.group, result.public_key),
                "wall_seconds": round(result.wall_seconds, 4),
                "messages": result.metrics.messages_total,
                "bytes": result.metrics.bytes_total,
            },
        )
        return 0 if result.succeeded else 1
    from repro.groupmod import GroupManager
    from repro.groupmod.messages import ModProposal

    # Sim groupmod simulates each stage separately; capture is
    # analysis-only, like sim renewal.
    with _flight_recorder(
        args, "groupmod", transport="sim", config=config, new_node=new_node
    ):
        manager = GroupManager(config, seed=args.seed)
        manager.bootstrap()
        secret_before = manager.reconstruct()
        report = manager.agree(
            {min(manager.members): ModProposal("add", new_node)}
        )
        addition = manager.add_node(new_node)
    _emit(
        args,
        {
            "transport": "sim",
            "new_node": new_node,
            "agreed_proposals": len(report.common_queue()),
            "members": list(manager.members),
            "share_delivered": addition.share is not None,
            "secret_invariant": manager.reconstruct() == secret_before,
            "public_key": element_hex(config.group, manager.public_key),
        },
    )
    return 0 if addition.share is not None else 1


def _parse_crash(spec: str) -> tuple[int, float, float | None]:
    """Parse NODE@AT[+UP]: crash NODE at time AT, recover UP later."""
    try:
        node_part, _, time_part = spec.partition("@")
        at_part, plus, up_part = time_part.partition("+")
        node = int(node_part)
        at = float(at_part)
        up_after = float(up_part) if plus else None
        return node, at, up_after
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad crash spec {spec!r} (want NODE@AT or NODE@AT+UP)"
        ) from exc


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run one DKG over real asyncio TCP sockets on localhost."""
    from repro.net import DropRetryLink, run_local_cluster

    config = DkgConfig(
        n=args.n, t=args.t, f=args.f,
        group=_group(args), codec=_codec(args),
    )
    delay_model = _tcp_delay_model(args)
    if args.drop > 0:
        delay_model = DropRetryLink(
            base=delay_model, drop_probability=args.drop
        )
    with _flight_recorder(args, "cluster", transport="tcp", config=config, tau=0):
        with _crypto_pool(args):
            result = run_local_cluster(
                config,
                seed=args.seed,
                delay_model=delay_model,
                time_scale=args.time_scale,
                crash_plan=args.crash,
                timeout=args.timeout,
            )
    payload = {
        "transport": "asyncio-tcp",
        "succeeded": result.succeeded,
        "completed_nodes": result.completed_nodes,
        "crashed_nodes": sorted(result.crashed),
        "wall_seconds": round(result.wall_seconds, 4),
        "messages": result.metrics.messages_total,
        "bytes": result.metrics.bytes_total,
    }
    if result.completions:
        payload["q_set"] = list(result.q_set)
        payload["public_key"] = element_hex(config.group, result.public_key)
    _emit(args, payload)
    return 0 if result.succeeded else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    """Probe the n >= 3t + 2f + 1 boundary for the given (t, f)."""
    from repro import quorum

    bound = quorum.resilience_bound(args.t, args.f)
    results = {}
    for n in (bound, bound - 1):
        if n < 1:
            continue
        config = DkgConfig(
            n=n, t=args.t, f=args.f,
            group=_group(args),
            enforce_resilience=False,
        )
        byz = frozenset(range(n - args.t + 1, n + 1)) if args.t else frozenset()
        adv = Adversary(t=args.t, f=args.f, byzantine=byz)
        from repro.sim.node import ProtocolNode

        res = run_dkg(
            config, seed=args.seed, adversary=adv,
            node_factory=lambda i, c, k, ca: ProtocolNode(i) if i in byz else None,
            until=2000.0, max_events=None,
        )
        honest = [i for i in range(1, n + 1) if i not in byz]
        results[n] = all(res.nodes[i].completed is not None for i in honest)
    _emit(args, {"bound": bound, "success_by_n": results})
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the client-facing threshold service on a TCP port."""
    import asyncio

    from repro.service import ServiceConfig, ServiceFrontend, ThresholdService

    config = ServiceConfig(
        n=args.n,
        t=args.t,
        f=args.f,
        group=_group(args),
        seed=args.seed,
        pool_target=args.pool,
        pool_low_watermark=args.low_watermark,
        cores=args.cores,
    )
    if args.shards is not None:
        return _serve_shards(args, config)

    async def _main() -> dict:
        from repro.crypto import parallel

        service = ThresholdService(config)
        # One pool serves both the forge fan-out and (as the ambient
        # executor) any large batched verification on the combine path.
        previous_executor = parallel.set_executor(service.crypto_executor)
        await service.start()
        frontend = ServiceFrontend(
            service, host=args.host, port=args.port, max_queue=args.max_queue
        )
        await frontend.start()
        metrics_server = None
        if args.metrics_port is not None:
            from repro.obs.http import MetricsHttpServer

            metrics_server = MetricsHttpServer(
                host=args.host, port=args.metrics_port
            )
            await metrics_server.start()
            print(
                f"metrics on http://{metrics_server.host}:"
                f"{metrics_server.port}/metrics",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        started = loop.time()
        for node, at, up_after in args.crash:
            loop.call_later(at, service.crash_node, node)
            if up_after is not None:
                loop.call_later(at + up_after, service.recover_node, node)
        print(
            f"serving n={args.n} t={args.t} pool={args.pool} "
            f"on {frontend.host}:{frontend.port}",
            flush=True,
        )
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            if metrics_server is not None:
                await metrics_server.stop()
            await frontend.stop()
            await service.stop()
            parallel.set_executor(previous_executor)
        return {
            "address": f"{frontend.host}:{frontend.port}",
            "metrics_address": (
                f"{metrics_server.host}:{metrics_server.port}"
                if metrics_server is not None
                else None
            ),
            "uptime_seconds": round(loop.time() - started, 2),
            "served": service.served,
            "failed": service.failed,
            "busy_rejections": frontend.rejected_busy,
            "connections": frontend.connections_total,
            "presigs_forged": service.pool.forged,
            "presigs_invalidated": service.pool.invalidated,
            "beacon_height": service.beacon.height,
            "public_key": element_hex(config.group, service.public_key),
        }

    try:
        # Service traffic is client-driven, so the capture is
        # analysis-only (`repro trace`), not replayable.
        with _flight_recorder(
            args, "serve", transport="tcp", group=config.group,
            n=args.n, t=args.t, f=args.f,
        ):
            summary = asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0
    _emit(args, summary)
    return 0


def _serve_shards(args: argparse.Namespace, template) -> int:
    """Run the multi-committee shard router on a TCP port."""
    import asyncio

    from repro.service import ShardFrontend, ShardRouter

    if args.crash:
        print(
            "serve --shards does not take --crash (crash individual "
            "shard processes instead)",
            file=sys.stderr,
        )
        return 2

    async def _main() -> dict:
        router = ShardRouter(template)
        await router.start(shards=args.shards)
        frontend = ShardFrontend(
            router, host=args.host, port=args.port, max_queue=args.max_queue
        )
        await frontend.start()
        metrics_server = None
        if args.metrics_port is not None:
            from repro.obs.http import MetricsHttpServer

            metrics_server = MetricsHttpServer(
                host=args.host, port=args.metrics_port
            )
            await metrics_server.start()
            print(
                f"metrics on http://{metrics_server.host}:"
                f"{metrics_server.port}/metrics",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        started = loop.time()
        print(
            f"serving shards={args.shards} n={args.n} t={args.t} "
            f"pool={args.pool} on {frontend.host}:{frontend.port}",
            flush=True,
        )
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            if metrics_server is not None:
                await metrics_server.stop()
            await frontend.stop()
            await router.stop()
        return {
            "address": f"{frontend.host}:{frontend.port}",
            "uptime_seconds": round(loop.time() - started, 2),
            "shard_map": router.describe(),
            "busy_rejections": frontend.rejected_busy,
            "connections": frontend.connections_total,
        }

    try:
        summary = asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0
    _emit(args, summary)
    return 0


def cmd_shardctl(args: argparse.Namespace) -> int:
    """Administer a running shard router: add / drain / status."""
    import asyncio

    from repro.service.loadgen import ServiceClient

    async def _run() -> dict:
        client = await ServiceClient.connect(
            args.host, args.port, attempts=args.attempts
        )
        try:
            return await client.shardctl(args.op, args.shard or "")
        finally:
            await client.close()

    try:
        document = asyncio.run(_run())
    except (ConnectionError, RuntimeError, OSError) as exc:
        print(f"shardctl {args.op} failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(document, indent=2, default=str))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a flight-recorder capture and verify its transcript."""
    from repro.obs.replay import ReplayError, TruncatedCaptureError, replay_file

    try:
        with _crypto_pool(args):
            result = replay_file(args.capture)
    except (ReplayError, OSError) as exc:
        # A structured, machine-readable failure: the fuzzer's
        # reproducer-emit path makes truncated/partial JSONL captures a
        # reachable state, and scripts drive this command with --json.
        error = {
            "error": type(exc).__name__,
            "message": str(exc),
            "capture": args.capture,
            "truncated": isinstance(exc, TruncatedCaptureError),
        }
        print(json.dumps(error, indent=2), file=sys.stderr)
        return 2
    _emit(args, result.as_dict())
    return 0 if result.matched else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Fuzz protocol schedules: mutate, replay, assert invariants."""
    from repro.fuzz import FuzzRunner, Schedule, generate_capture, load_schedule
    from repro.obs.replay import ReplayError

    if args.smoke:
        # The bounded CI/acceptance shape: smallest resilient
        # deployment, capped mutation count, fast tcp phases.
        args.n, args.t, args.f = 4, 1, 0
        args.max_ops = min(args.max_ops, 6)
        args.phases = 1
    try:
        if args.reproduce is not None:
            base = load_schedule(args.reproduce)
            runner = FuzzRunner(
                base,
                max_ops=args.max_ops,
                reproducer_dir=args.reproducers,
            )
            verdict = runner.reproduce(base)
            _emit(args, verdict)
            return 0 if verdict["matched"] else 1
        if args.capture is not None:
            base = load_schedule(args.capture)
        else:
            capture = generate_capture(
                args.protocol,
                n=args.n,
                t=args.t,
                f=args.f,
                seed=args.seed,
                group=_group(args),
                phases=args.phases,
            )
            base = Schedule.from_capture(capture)
        runner = FuzzRunner(
            base,
            protocol=args.protocol,
            max_ops=args.max_ops,
            reproducer_dir=args.reproducers,
        )
        report = runner.run(
            args.seeds,
            first_seed=args.first_seed,
            self_check=not args.no_self_check,
        )
    except (ReplayError, OSError, ValueError) as exc:
        print(
            json.dumps(
                {"error": type(exc).__name__, "message": str(exc)}, indent=2
            ),
            file=sys.stderr,
        )
        return 2
    document = report.as_dict()
    if args.report is not None:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
    _emit(args, document)
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Analyze a capture: phase latencies, flow matrix, critical path."""
    from repro.obs.analysis import analyze_file
    from repro.obs.replay import ReplayError

    try:
        report = analyze_file(args.capture)
    except (ReplayError, OSError) as exc:
        print(f"trace analysis failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, default=str))
        return 0
    meta = report.meta
    print(
        f"capture: cmd={meta.get('cmd')} transport={meta.get('transport')} "
        f"group={meta.get('group')} seed={meta.get('seed')} "
        f"spans={report.spans}"
    )
    if report.thresholds:
        th = report.thresholds
        print(
            f"thresholds: n={th['n']} t={th['t']} f={th['f']} "
            f"echo={th['echo']} ready={th['ready']} output={th['output']}"
        )
    print("phases:")
    for phase in report.phases:
        lat = phase.latencies()
        print(
            f"  {phase.session}: spans={phase.spans} outputs={phase.outputs} "
            f"send->echo={lat['send_to_echo']} "
            f"echo->ready={lat['echo_to_ready']} "
            f"ready->output={lat['ready_to_output']} "
            f"total={lat['send_to_output']}"
        )
    print("flow (node x message kind):")
    for node, kinds in sorted(report.flow.items()):
        row = " ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        print(f"  node {node}: {row}")
    print(f"critical path ({len(report.critical_path)} steps):")
    for step in report.critical_path:
        print(
            f"  t={step.t:10.4f} node={step.node} "
            f"session={step.session} {step.event}"
        )
    if report.step_durations:
        print("step durations (seconds):")
        for event, stats in report.step_durations.items():
            print(
                f"  {event}: n={stats['count']} p50={stats['p50']:.6f} "
                f"p90={stats['p90']:.6f} p99={stats['p99']:.6f}"
            )
    return 0


def cmd_ops(args: argparse.Namespace) -> int:
    """Fetch a running service's live observability snapshot."""
    import asyncio

    from repro.service.loadgen import ServiceClient

    async def _fetch() -> dict:
        client = await ServiceClient.connect(
            args.host, args.port, attempts=args.attempts
        )
        try:
            if args.fleet:
                return await client.fleet_ops()
            return await client.ops()
        finally:
            await client.close()

    try:
        snapshot = asyncio.run(_fetch())
    except (ConnectionError, RuntimeError, OSError) as exc:
        print(f"ops query failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(snapshot, indent=2, default=str))
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service with concurrent closed-loop clients."""
    from repro.service import run_loadgen

    report = run_loadgen(
        args.host,
        args.port,
        clients=args.clients,
        requests_per_client=args.requests,
        op=args.op,
        payload_bytes=args.payload_bytes,
        expect_backend=args.backend,
        keys=args.keys,
    )
    _emit(args, report.as_dict())
    if report.invalid_signatures:
        return 2
    return 0 if report.completed > 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated runs of the Kate-Goldberg asynchronous DKG stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dkg = sub.add_parser("dkg", help="run one DKG session")
    _common_args(p_dkg)
    _cores_arg(p_dkg)
    p_dkg.add_argument("--reconstruct", action="store_true",
                       help="also run protocol Rec afterwards")
    _trace_arg(p_dkg)
    p_dkg.set_defaults(func=cmd_dkg)

    p_vss = sub.add_parser("vss", help="run one HybridVSS sharing")
    _common_args(p_vss)
    p_vss.add_argument("--secret", type=int, default=None)
    p_vss.add_argument("--reconstruct", action="store_true")
    p_vss.set_defaults(func=cmd_vss)

    def _transport_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--transport", default="sim", choices=("sim", "tcp"),
            help="execution backend: deterministic simulation or real "
                 "asyncio TCP sockets on localhost",
        )
        parser.add_argument(
            "--time-scale", type=float, default=0.02,
            help="[tcp] wall seconds per protocol time unit",
        )
        parser.add_argument(
            "--latency", type=float, default=0.0,
            help="[tcp] mean injected link latency in time units",
        )
        parser.add_argument(
            "--crash", type=_parse_crash, action="append", default=[],
            metavar="NODE@AT[+UP]",
            help="[tcp] crash NODE at time AT into the phase (recover UP "
                 "units later); repeatable",
        )
        parser.add_argument(
            "--timeout", type=float, default=60.0,
            help="[tcp] wall-clock seconds to wait per protocol stage",
        )

    p_renew = sub.add_parser("renew", help="bootstrap + proactive renewal")
    _common_args(p_renew)
    p_renew.add_argument("--phases", type=int, default=2)
    _transport_args(p_renew)
    _trace_arg(p_renew)
    p_renew.set_defaults(func=cmd_renew)

    p_gm = sub.add_parser(
        "groupmod",
        help="§6 group modification: agree on an add proposal and "
             "deliver the joiner its share",
    )
    _common_args(p_gm)
    p_gm.add_argument(
        "--new-node", type=int, default=None,
        help="index of the joining node (default: n + 1)",
    )
    _transport_args(p_gm)
    _trace_arg(p_gm)
    p_gm.set_defaults(func=cmd_groupmod)

    p_res = sub.add_parser(
        "resilience", help="probe the 3t+2f+1 boundary for given t, f"
    )
    _common_args(p_res)
    p_res.set_defaults(func=cmd_resilience)

    p_cluster = sub.add_parser(
        "cluster", help="run one DKG over real asyncio TCP on localhost"
    )
    _common_args(p_cluster)
    _cores_arg(p_cluster)
    p_cluster.add_argument(
        "--time-scale", type=float, default=0.02,
        help="wall seconds per protocol time unit (timers and delays)",
    )
    p_cluster.add_argument(
        "--latency", type=float, default=0.0,
        help="mean injected link latency in time units (0 = raw sockets)",
    )
    p_cluster.add_argument(
        "--drop", type=float, default=0.0,
        help="per-message drop probability, healed by retransmission",
    )
    p_cluster.add_argument(
        "--crash", type=_parse_crash, action="append", default=[],
        metavar="NODE@AT[+UP]",
        help="crash NODE at time AT (recover UP units later); repeatable",
    )
    p_cluster.add_argument(
        "--timeout", type=float, default=60.0,
        help="wall-clock seconds to wait for completion",
    )
    _trace_arg(p_cluster)
    p_cluster.set_defaults(func=cmd_cluster)

    p_serve = sub.add_parser(
        "serve", help="run the client-facing threshold service over TCP"
    )
    _common_args(p_serve)
    _cores_arg(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7710, help="listen port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--pool", type=int, default=16,
        help="presignature pool target (0 disables the pool)",
    )
    p_serve.add_argument(
        "--low-watermark", type=int, default=None,
        help="refill trigger level (default: half the pool target)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=256,
        help="bounded request queue size (backpressure beyond it)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=None, metavar="M",
        help="serve M independent committees behind a consistent-hash "
             "shard router instead of one service (codec v6 shard "
             "frames; administer with `repro shardctl`)",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve the live metrics registry over HTTP on this "
             "port (0 = ephemeral; /metrics, /metrics.json, /healthz)",
    )
    p_serve.add_argument(
        "--duration", type=float, default=0.0,
        help="seconds to serve before exiting (0 = until interrupted)",
    )
    p_serve.add_argument(
        "--crash", type=_parse_crash, action="append", default=[],
        metavar="NODE@AT[+UP]",
        help="crash NODE after AT seconds (recover UP later); repeatable",
    )
    _trace_arg(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a flight-recorder capture in the sim driver "
             "and verify the transcript hash",
    )
    p_replay.add_argument("capture", help="capture file from --trace-out")
    _cores_arg(p_replay)
    p_replay.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_replay.set_defaults(func=cmd_replay)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="mutate captured schedules deterministically and assert "
             "the paper's safety invariants over every mutant",
    )
    _common_args(p_fuzz)
    p_fuzz.add_argument(
        "--protocol", default="dkg", choices=("dkg", "renew", "groupmod"),
        help="protocol whose schedules to fuzz (renew/groupmod generate "
             "their base capture over local TCP)",
    )
    p_fuzz.add_argument(
        "--seeds", type=int, default=50,
        help="number of mutation seeds to run; every failure prints its "
             "seed, and the same (capture, seed) reproduces bit-identically",
    )
    p_fuzz.add_argument(
        "--first-seed", type=int, default=0,
        help="start of the seed range (shard long campaigns across jobs)",
    )
    p_fuzz.add_argument(
        "--max-ops", type=int, default=8,
        help="mutation operators per seed (budgets still cap crashes "
             "at f and Byzantine senders at t)",
    )
    p_fuzz.add_argument(
        "--phases", type=int, default=1,
        help="[renew] renewal phases in the generated base capture",
    )
    p_fuzz.add_argument(
        "--smoke", action="store_true",
        help="bounded CI shape: n=4 t=1 f=0, at most 6 ops per seed",
    )
    p_fuzz.add_argument(
        "--capture", default=None, metavar="FILE.jsonl",
        help="fuzz this recorded capture instead of generating one "
             "(must be replayable: sim dkg or tcp renew/groupmod)",
    )
    p_fuzz.add_argument(
        "--reproduce", default=None, metavar="FILE.jsonl",
        help="re-run a reproducer emitted by a failing campaign and "
             "verify it reaches the recorded verdict",
    )
    p_fuzz.add_argument(
        "--report", default=None, metavar="FILE.json",
        help="also write the JSON campaign report to this file",
    )
    p_fuzz.add_argument(
        "--reproducers", default=None, metavar="DIR",
        help="emit shrunk failure reproducers into this directory",
    )
    p_fuzz.add_argument(
        "--no-self-check", action="store_true",
        help="skip the planted-bug verifier self-check",
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_trace = sub.add_parser(
        "trace",
        help="analyze a capture: phase latencies, flow matrix, "
             "critical path, step-duration percentiles",
    )
    p_trace.add_argument("capture", help="capture file from --trace-out")
    p_trace.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_ops = sub.add_parser(
        "ops", help="dump a running service's live metrics snapshot"
    )
    p_ops.add_argument("--host", default="127.0.0.1")
    p_ops.add_argument("--port", type=int, default=7710)
    p_ops.add_argument(
        "--attempts", type=int, default=4,
        help="connection attempts before giving up",
    )
    p_ops.add_argument(
        "--fleet", action="store_true",
        help="against a shard router: the aggregated fleet snapshot "
             "(per-shard pool depth, refill lag, per-kind latency, "
             "fleet totals) instead of one service's OPS document",
    )
    p_ops.set_defaults(func=cmd_ops)

    p_shardctl = sub.add_parser(
        "shardctl",
        help="administer a running shard router: add a committee, "
             "drain one out of rotation, or dump the shard map",
    )
    p_shardctl.add_argument(
        "op", choices=("add", "drain", "status"), help="admin verb"
    )
    p_shardctl.add_argument(
        "--shard", default="",
        help="target shard id (required for drain; optional name for add)",
    )
    p_shardctl.add_argument("--host", default="127.0.0.1")
    p_shardctl.add_argument("--port", type=int, default=7710)
    p_shardctl.add_argument(
        "--attempts", type=int, default=4,
        help="connection attempts before giving up",
    )
    p_shardctl.set_defaults(func=cmd_shardctl)

    p_loadgen = sub.add_parser(
        "loadgen", help="generate client load against a running service"
    )
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=7710)
    p_loadgen.add_argument(
        "--clients", type=int, default=8, help="concurrent connections"
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=10, help="requests per client"
    )
    p_loadgen.add_argument(
        "--op", default="sign",
        choices=("sign", "beacon", "dprf", "status", "mix", "shard"),
        help="operation mix to issue (`shard` drives keyed signs "
             "against a shard router)",
    )
    p_loadgen.add_argument(
        "--keys", type=int, default=16,
        help="[shard] distinct key ids to spread requests over",
    )
    p_loadgen.add_argument("--payload-bytes", type=int, default=16)
    p_loadgen.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="fail unless the service runs this group backend",
    )
    p_loadgen.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_loadgen.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
