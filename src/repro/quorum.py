"""The Fig. 1 quorum-threshold formulas, in exactly one place.

The paper's weak-termination and agreement arguments hinge on three
counts (Fig. 1) plus the hybrid-model resilience bound of §2.2:

* ``echo_threshold``   — ``ceil((n + t + 1) / 2)`` echoes pin down a
  unique commitment ``C`` (two echo quorums must intersect in an
  honest node);
* ``ready_threshold``  — ``t + 1`` readies contain at least one honest
  one and trigger ready amplification;
* ``output_threshold`` — ``n - t - f`` readies certify that every
  *finally up* honest node is represented, so ``Sh`` may complete;
* ``resilience_bound`` — ``n >= 3t + 2f + 1`` nodes overall.

Protocol nodes (:mod:`repro.vss.config` feeds every machine), the
offline trace analyzer (:mod:`repro.obs.analysis`) and the schedule
fuzzer (:mod:`repro.fuzz`) all read the formulas from here, so the
quorum arithmetic the system *enforces*, *reports* and *attacks* can
never drift apart.
"""

from __future__ import annotations

import math


def echo_threshold(n: int, t: int) -> int:
    """ceil((n + t + 1) / 2) — echoes needed to lock one commitment."""
    return math.ceil((n + t + 1) / 2)


def ready_threshold(t: int) -> int:
    """t + 1 — readies that guarantee one honest vote (amplification)."""
    return t + 1


def output_threshold(n: int, t: int, f: int) -> int:
    """n - t - f — the ready count at which Sh completes."""
    return n - t - f


def resilience_bound(t: int, f: int) -> int:
    """The minimum n admitting (t, f): 3t + 2f + 1 (§2.2)."""
    return 3 * t + 2 * f + 1


def satisfies_resilience(n: int, t: int, f: int) -> bool:
    """Whether (n, t, f) sits on or above the hybrid-model bound."""
    return n >= resilience_bound(t, f)


def thresholds(n: int, t: int, f: int) -> dict[str, int]:
    """All Fig. 1 counts for one deployment, as a JSON-ready dict."""
    return {
        "n": n,
        "t": t,
        "f": f,
        "echo": echo_threshold(n, t),
        "ready": ready_threshold(t),
        "output": output_threshold(n, t, f),
        "bound": resilience_bound(t, f),
    }
