"""Shared harness helpers for the benchmark suite.

Benchmarks in ``benchmarks/`` print paper-style tables: one row per
sweep point, with the measured quantity next to the paper's claim.
These helpers keep the formatting and the common sweep loops in one
place so each bench file reads like the experiment it reproduces.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass
class Table:
    """A fixed-width table accumulated row by row, printed to stdout."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.rows = []

    def add(self, *row: object) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.columns)}"
            )
        self.rows.append(row)

    def render(self, out=None) -> str:
        out = out if out is not None else sys.stdout
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows
            else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [f"\n== {self.title} =="]
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths))
            )
        text = "\n".join(lines)
        print(text, file=out)
        return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def geometric_sweep(values: Iterable[int]) -> list[int]:
    """Identity helper kept for readability at call sites."""
    return list(values)


def kib(n_bytes: int | float) -> float:
    return n_bytes / 1024.0
