"""Latency statistics over simulation outputs.

Completion-time *distributions* (not just the max) matter for the §2.1
story: asynchronous protocols let fast quorums finish early, so the
median node completes well before the straggler.  These helpers compute
the standard summary statistics from a run's outputs without pulling in
numpy for the core library.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencySummary:
    count: int
    minimum: float
    median: float
    p90: float
    maximum: float
    mean: float

    def as_row(self) -> tuple[int, float, float, float, float, float]:
        return (
            self.count, self.minimum, self.median, self.p90, self.maximum,
            self.mean,
        )


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    weight = position - low
    interpolated = sorted_values[low] * (1 - weight) + sorted_values[high] * weight
    # Clamp: float rounding of the convex combination must not place
    # the result outside the data range by an ulp.
    return min(max(interpolated, sorted_values[low]), sorted_values[high])


def summarize(values: Iterable[float]) -> LatencySummary:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("no values to summarize")
    return LatencySummary(
        count=len(ordered),
        minimum=ordered[0],
        median=percentile(ordered, 0.5),
        p90=percentile(ordered, 0.9),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
    )


def completion_latencies(simulation, kind: str) -> list[float]:
    """Extract output times of a given payload kind from a simulation."""
    return [
        record.time
        for record in simulation.outputs
        if getattr(record.payload, "kind", None) == kind
    ]
