"""The paper's complexity claims as closed-form reference functions.

Each function returns the *exact* count where the paper's text pins one
down (e.g. crash-free HybridVSS sends exactly ``n + 2n^2`` messages) or
the asymptotic envelope otherwise.  Benchmarks print measured counts
next to these so EXPERIMENTS.md can record paper-vs-measured rows, and
``fit_exponent`` estimates the empirical growth order of a measured
series for shape checks like "messages grow as n^2".
"""

from __future__ import annotations

import math
from collections.abc import Sequence

# Re-exported reference functions: the closed-form tables quote the
# same Fig. 1 formulas the protocols enforce, from the one shared
# module, so paper-vs-measured rows can never drift from the code.
from repro.quorum import echo_threshold, resilience_bound  # noqa: F401


# -- HybridVSS (§3, Efficiency Discussion) -------------------------------------


def vss_messages_crash_free(n: int) -> int:
    """Exact crash-free Sh message count: n sends + n^2 echoes + n^2 readies."""
    return n + 2 * n * n


def vss_bytes_crash_free_full(n: int, t: int, kappa_bytes: int) -> int:
    """O(kappa n^4) envelope with the full-matrix codec: every one of the
    ~2n^2 echo/ready messages carries the (t+1)^2-entry matrix."""
    matrix = (t + 1) ** 2 * 2 * kappa_bytes  # elements are ~2 kappa bits
    return vss_messages_crash_free(n) * matrix


def vss_bytes_crash_free_hashed(n: int, t: int, kappa_bytes: int) -> int:
    """O(kappa n^3) envelope with hash compression: only the n sends carry
    the matrix; the 2n^2 votes carry a digest."""
    matrix = (t + 1) ** 2 * 2 * kappa_bytes
    return n * matrix + 2 * n * n * 32


def vss_recovery_messages(n: int) -> int:
    """Per-recovery overhead: O(n^2) from the recovering node (help
    broadcast + B replay) + O(n) from each helper."""
    return 2 * n * n


def vss_messages_with_crashes(n: int, t: int, d: int) -> int:
    """§3 bound with crashes: O(t d n^2)."""
    return (t + 1) * d * vss_messages_crash_free(n)


# -- DKG (§4, Efficiency) ----------------------------------------------------------


def dkg_messages_optimistic(n: int) -> int:
    """Exact crash-free optimistic count: n HybridVSS instances
    (n * (n + 2n^2)) plus the proposal broadcast (n sends + 2n^2 votes)."""
    return n * vss_messages_crash_free(n) + n + 2 * n * n


def dkg_messages_optimistic_bound(n: int, t: int, d: int) -> int:
    """§4: O(t d n^3) messages for the optimistic phase."""
    return (t + 1) * max(d, 1) * n**3


def dkg_messages_per_leader_change(n: int, t: int, d: int) -> int:
    """§4: each leader change involves O(t d n^2) messages."""
    return (t + 1) * max(d, 1) * n**2


def dkg_messages_worst_case(n: int, t: int, d: int) -> int:
    """§4 worst case: O(t d n^2 (n + d))."""
    return (t + 1) * max(d, 1) * n**2 * (n + max(d, 1))


# -- resilience (§2.2): echo_threshold / resilience_bound re-exported above ----


# -- empirical shape fitting ---------------------------------------------------------------


def fit_exponent(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(n): the empirical
    polynomial order of a measured series.

    A measured message count growing as ~n^2 yields ~2.0 (lower-order
    terms push it slightly off; benches assert a tolerance window).
    """
    if len(ns) != len(ys) or len(ns) < 2:
        raise ValueError("need at least two (n, y) pairs")
    logn = [math.log(x) for x in ns]
    logy = [math.log(y) for y in ys]
    mean_x = sum(logn) / len(logn)
    mean_y = sum(logy) / len(logy)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(logn, logy))
    var = sum((x - mean_x) ** 2 for x in logn)
    if var == 0:
        raise ValueError("all n values identical")
    return cov / var


def ratio_table(
    ns: Sequence[int],
    measured: Sequence[float],
    predicted: Sequence[float],
) -> list[tuple[int, float, float, float]]:
    """Rows (n, measured, predicted, measured/predicted) for bench output."""
    return [
        (n, m, p, (m / p if p else math.inf))
        for n, m, p in zip(ns, measured, predicted)
    ]
