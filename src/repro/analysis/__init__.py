"""Analytic complexity model (the paper's bounds as code) and bench
harness helpers."""

from repro.analysis.complexity import (
    dkg_messages_optimistic,
    dkg_messages_optimistic_bound,
    dkg_messages_per_leader_change,
    dkg_messages_worst_case,
    echo_threshold,
    fit_exponent,
    ratio_table,
    resilience_bound,
    vss_bytes_crash_free_full,
    vss_bytes_crash_free_hashed,
    vss_messages_crash_free,
    vss_messages_with_crashes,
    vss_recovery_messages,
)
from repro.analysis.experiments import Table, geometric_sweep, kib
from repro.analysis.latency import (
    LatencySummary,
    completion_latencies,
    percentile,
    summarize,
)

__all__ = [
    "LatencySummary",
    "Table",
    "completion_latencies",
    "percentile",
    "summarize",
    "dkg_messages_optimistic",
    "dkg_messages_optimistic_bound",
    "dkg_messages_per_leader_change",
    "dkg_messages_worst_case",
    "echo_threshold",
    "fit_exponent",
    "geometric_sweep",
    "kib",
    "ratio_table",
    "resilience_bound",
    "vss_bytes_crash_free_full",
    "vss_bytes_crash_free_hashed",
    "vss_messages_crash_free",
    "vss_messages_with_crashes",
    "vss_recovery_messages",
]
