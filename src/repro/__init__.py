"""repro — a reproduction of "Distributed Key Generation for the Internet"
(Aniket Kate & Ian Goldberg, ICDCS 2009).

The package implements, from scratch:

* the paper's cryptographic substrate (Schnorr groups, symmetric
  bivariate polynomials, Feldman/Pedersen commitments, Schnorr
  signatures, DLEQ proofs) — :mod:`repro.crypto`;
* a deterministic discrete-event network simulator with the paper's
  hybrid fault model (t Byzantine + f crash/link failures, weak
  synchrony for liveness) — :mod:`repro.sim`;
* **HybridVSS** (§3) — :mod:`repro.vss`;
* the asynchronous **DKG** with leader-based agreement (§4) —
  :mod:`repro.dkg`;
* proactive share renewal and recovery (§5) — :mod:`repro.proactive`;
* group modification protocols (§6) — :mod:`repro.groupmod`;
* synchronous / classic baselines (Joint-Feldman DKG, Bracha broadcast)
  — :mod:`repro.baselines`;
* threshold applications driven by DKG output (ElGamal, Schnorr
  signatures, DDH-based distributed PRF / coin flipping) —
  :mod:`repro.apps`;
* the sans-I/O execution core — protocols as pure
  ``step(event, env) -> [Effect]`` machines, a session-multiplexing
  :class:`~repro.runtime.runtime.ProtocolRuntime`, and the one effect
  interpreter every backend shares — :mod:`repro.runtime`;
* a real network runtime — wire codec, transport abstraction, and a
  localhost asyncio cluster running the same protocol machines (any
  number of sessions per endpoint) over actual TCP sockets —
  :mod:`repro.net`;
* a client-facing serving layer — request frames, an asyncio gateway
  with backpressure and batching, a presignature pool and a load
  generator — :mod:`repro.service`.

Quickstart::

    from repro.dkg import run_dkg, DkgConfig
    result = run_dkg(DkgConfig(n=7, t=2, f=0, seed=1))
    assert result.succeeded
    print(hex(result.public_key))

Same session over real sockets::

    from repro.net import run_local_cluster
    result = run_local_cluster(DkgConfig(n=7, t=2, f=0), seed=1)

Serve threshold-crypto requests from the DKG'd cluster (or from a
shell: ``repro serve`` / ``repro loadgen``)::

    from repro import ServiceConfig, ServiceFrontend, ThresholdService

The service entry points are re-exported lazily at package top level so
``import repro`` stays light.
"""

from __future__ import annotations

__version__ = "1.1.0"

# Service-layer entry points, resolved on first use (PEP 562).
_SERVICE_EXPORTS = (
    "LoadGenerator",
    "LoadReport",
    "PresigPool",
    "Presignature",
    "ServiceClient",
    "ServiceConfig",
    "ServiceFrontend",
    "SignerWorker",
    "ThresholdService",
    "run_loadgen",
)

__all__ = sorted((*_SERVICE_EXPORTS, "__version__"))


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        import importlib

        value = getattr(importlib.import_module("repro.service"), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
