"""repro — a reproduction of "Distributed Key Generation for the Internet"
(Aniket Kate & Ian Goldberg, ICDCS 2009).

The package implements, from scratch:

* the paper's cryptographic substrate (Schnorr groups, symmetric
  bivariate polynomials, Feldman/Pedersen commitments, Schnorr
  signatures, DLEQ proofs) — :mod:`repro.crypto`;
* a deterministic discrete-event network simulator with the paper's
  hybrid fault model (t Byzantine + f crash/link failures, weak
  synchrony for liveness) — :mod:`repro.sim`;
* **HybridVSS** (§3) — :mod:`repro.vss`;
* the asynchronous **DKG** with leader-based agreement (§4) —
  :mod:`repro.dkg`;
* proactive share renewal and recovery (§5) — :mod:`repro.proactive`;
* group modification protocols (§6) — :mod:`repro.groupmod`;
* synchronous / classic baselines (Joint-Feldman DKG, Bracha broadcast)
  — :mod:`repro.baselines`;
* threshold applications driven by DKG output (ElGamal, Schnorr
  signatures, DDH-based distributed PRF / coin flipping) —
  :mod:`repro.apps`;
* a real network runtime — wire codec, transport abstraction, and a
  localhost asyncio cluster running the same node state machines over
  actual TCP sockets — :mod:`repro.net`.

Quickstart::

    from repro.dkg import run_dkg, DkgConfig
    result = run_dkg(DkgConfig(n=7, t=2, f=0, seed=1))
    assert result.succeeded
    print(hex(result.public_key))

Same session over real sockets::

    from repro.net import run_local_cluster
    result = run_local_cluster(DkgConfig(n=7, t=2, f=0), seed=1)
"""

__version__ = "1.0.0"
