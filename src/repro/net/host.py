"""NodeHost: one protocol state machine living on a transport.

A host owns a :class:`~repro.sim.node.ProtocolNode` (any of the
package's state machines — VSS, DKG, proactive, baselines) and an
:class:`~repro.net.transport.AsyncioTransport`, and is the glue the
simulator's event loop used to be: it turns inbound frames into
``on_message`` calls, timer fires into ``on_timer``, operator inputs
into ``on_operator``, all with a fresh :class:`~repro.sim.node.Context`
bound to the transport — the very same ``Context`` API the node runs
under in the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.net.transport import AsyncioTransport
from repro.sim.node import Context, OutputRecord, ProtocolNode


class NodeHost:
    """Drives one node over one transport endpoint."""

    def __init__(self, node: ProtocolNode, transport: AsyncioTransport):
        if node.node_id != transport.node_id:
            raise ValueError("node and transport disagree on the node index")
        self.node = node
        self.transport = transport
        transport.on_message = self._on_message
        transport.on_timer = self._on_timer

    # -- plumbing ------------------------------------------------------------

    def _ctx(self) -> Context:
        return Context(self.transport, self.node.node_id)

    def _on_message(self, sender: int, payload: Any) -> None:
        self.node.on_message(sender, payload, self._ctx())

    def _on_timer(self, tag: Any) -> None:
        self.node.on_timer(tag, self._ctx())

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self.transport.start()

    async def stop(self) -> None:
        await self.transport.stop()

    def crash(self) -> None:
        """Transport links down + the node's crash hook (§2.2)."""
        self.transport.crash()
        self.node.on_crash()

    async def recover(self) -> None:
        """Restart the endpoint, then let the node run its recovery
        (help requests + B-log replay) over the revived links."""
        await self.transport.recover()
        self.node.on_recover(self._ctx())

    # -- operator surface ----------------------------------------------------

    def inject(self, payload: Any) -> None:
        """Deliver an operator ``in`` message to the node."""
        if self.transport.crashed:
            return
        self.node.on_operator(payload, self._ctx())

    @property
    def outputs(self) -> list[OutputRecord]:
        return self.transport.outputs

    def outputs_of_kind(self, kind: str) -> list[OutputRecord]:
        return [
            o
            for o in self.outputs
            if getattr(o.payload, "kind", None) == kind
        ]

    async def wait_for_output(self, kind: str, timeout: float | None = None) -> Any:
        """Block until the node emits an output of ``kind``; returns it.

        ``timeout`` is in wall-clock seconds; ``asyncio.TimeoutError``
        is raised on expiry.
        """

        async def _wait() -> Any:
            while True:
                found = self.outputs_of_kind(kind)
                if found:
                    return found[0].payload
                event = self.transport.output_event
                assert event is not None, "host not started"
                event.clear()
                await event.wait()

        return await asyncio.wait_for(_wait(), timeout)

    def raise_errors(self) -> None:
        """Surface the first handler exception, if any (tests/cluster)."""
        if self.transport.errors:
            raise self.transport.errors[0]
