"""NodeHost: one runtime endpoint living on an asyncio transport.

A host binds a :class:`~repro.runtime.runtime.ProtocolRuntime` to an
:class:`~repro.net.transport.AsyncioTransport` through the shared
:class:`~repro.runtime.driver.MachineDriver`: inbound frames become
``MessageReceived`` events, expiring loop timers ``TimerFired``,
operator inputs ``OperatorInput`` — and the effects each ``step``
returns are interpreted against the transport.  Any number of
concurrent protocol sessions (VSS, DKG, renewal phases, group
modification) share the host's single server socket and connection
set; un-enveloped frames from single-protocol peers route to the
default session.

The one-argument form ``NodeHost(node, transport)`` keeps the historic
one-node-per-endpoint API: it opens the node as the runtime's default
session.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.net.transport import AsyncioTransport
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger
from repro.runtime.driver import MachineDriver
from repro.runtime.envelope import SessionEnvelope
from repro.runtime.runtime import ProtocolRuntime
from repro.sim.node import OutputRecord, ProtocolNode

DEFAULT_SESSION = "main"


class NodeHost:
    """Drives one runtime (one or many sessions) over one endpoint."""

    def __init__(
        self,
        node: ProtocolNode | ProtocolRuntime | None,
        transport: AsyncioTransport,
        *,
        session: str = DEFAULT_SESSION,
    ):
        if isinstance(node, ProtocolRuntime):
            if node.node_id != transport.node_id:
                raise ValueError("runtime and transport disagree on the index")
            self.runtime = node
        else:
            self.runtime = ProtocolRuntime(transport.node_id)
            if node is not None:
                if node.node_id != transport.node_id:
                    raise ValueError(
                        "node and transport disagree on the node index"
                    )
                self.runtime.open_session(session, node, default=True)
        self.transport = transport
        self.logger = get_logger("repro.net.host", node=transport.node_id)
        self.driver = MachineDriver(self.runtime, transport, transport.node_id)
        transport.on_message = self.driver.handle_message
        transport.on_timer = self._on_timer

    # -- plumbing ------------------------------------------------------------

    @property
    def node(self) -> ProtocolNode | None:
        """The default session's machine (the historic one-node
        surface), tracked live as sessions open and close."""
        if self.runtime.default_session is None:
            return None
        return self.runtime.sessions.get(self.runtime.default_session)

    def _on_timer(self, tag: Any, backend_id: int) -> None:
        self.driver.handle_timer(backend_id, tag)

    # -- session management --------------------------------------------------

    def open_session(self, session: str, node: ProtocolNode) -> None:
        """Multiplex another protocol instance onto this endpoint."""
        self.runtime.open_session(session, node)
        self._record_open(session)
        self.logger.bind(session=session).debug("session opened")

    def _record_open(self, session: str) -> None:
        """Flight-recorder control line for an *orchestrated* open.

        Replay re-creates these sessions from the capture; sessions a
        machine spawns itself (``SpawnSession``) re-happen naturally
        during re-execution and must not be recorded here — which is
        why this hook sits on the host, not inside the runtime.
        """
        sink = self.driver.trace_sink
        if sink is None:
            sink = obs_trace.trace_sink()
        if sink is None or getattr(sink, "payload_codec", None) is None:
            return
        record_control = getattr(sink, "record_control", None)
        if record_control is not None:
            record_control(
                {
                    "record": "open",
                    "node": self.transport.node_id,
                    "session": session,
                    "members": sorted(self.transport.members),
                }
            )

    def close_session(self, session: str) -> None:
        self.runtime.close_session(session)
        self.logger.bind(session=session).debug("session closed")

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self.transport.start()

    async def stop(self) -> None:
        await self.transport.stop()

    def crash(self) -> None:
        """Transport links down + every session's crash hook (§2.2)."""
        self.transport.crash()
        self.logger.info("crashed: links down, in-flight frames lost")
        self.driver.handle_crash()

    async def recover(self) -> None:
        """Restart the endpoint, then let every session run its
        recovery (help requests + B-log replay) over revived links."""
        await self.transport.recover()
        self.logger.info("recovered: endpoint re-listening")
        self.driver.handle_recover()

    # -- operator surface ----------------------------------------------------

    def inject(self, payload: Any, *, session: str | None = None) -> bool:
        """Deliver an operator ``in`` message; returns False (and logs)
        when the endpoint is crashed and the input was dropped."""
        if self.transport.crashed:
            self.logger.bind(session=session).warning(
                "operator input %r dropped (endpoint crashed)",
                getattr(payload, "kind", type(payload).__name__),
            )
            return False
        if session is not None:
            payload = SessionEnvelope(session, payload)
        self.driver.handle_operator(payload)
        return True

    @property
    def outputs(self) -> list[OutputRecord]:
        return self.transport.outputs

    def outputs_of_kind(
        self, kind: str, session: str | None = None
    ) -> list[OutputRecord]:
        records = self.outputs
        if session is not None:
            allowed = {
                id(p) for p in self.runtime.session_outputs.get(session, [])
            }
            records = [o for o in records if id(o.payload) in allowed]
        return [
            o for o in records if getattr(o.payload, "kind", None) == kind
        ]

    async def wait_for_output(
        self,
        kind: str,
        timeout: float | None = None,
        *,
        session: str | None = None,
    ) -> Any:
        """Block until an output of ``kind`` appears (optionally within
        ``session``); returns it.  ``timeout`` is wall-clock seconds;
        ``asyncio.TimeoutError`` is raised on expiry.
        """

        async def _wait() -> Any:
            while True:
                found = self.outputs_of_kind(kind, session=session)
                if found:
                    return found[0].payload
                event = self.transport.output_event
                assert event is not None, "host not started"
                event.clear()
                await event.wait()

        return await asyncio.wait_for(_wait(), timeout)

    def raise_errors(self) -> None:
        """Surface the first handler exception, if any (tests/cluster)."""
        if self.transport.errors:
            raise self.transport.errors[0]
