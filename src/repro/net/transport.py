"""The transport abstraction: one node logic, two networks.

A :class:`~repro.runtime.driver.MachineDriver` interprets a node's
effects through the narrow :class:`Transport` protocol.  Two backends
implement it:

* :class:`SimTransport` — a thin adapter over the discrete-event
  :class:`~repro.sim.runner.Simulation` (which already satisfies the
  protocol structurally; the adapter exists to make the contract
  explicit and to host transport-level knobs);
* :class:`AsyncioTransport` — a real TCP endpoint: frames from
  :mod:`repro.net.wire` over asyncio streams, timers on the event
  loop, lazy outbound connections with reconnect, and the same
  :class:`~repro.sim.network.DelayModel` fault-injection surface as
  the simulator (added latency, partitions via
  :class:`~repro.sim.network.PartitionDelay`, loss via
  :class:`DropRetryLink`), so E6/E11-style scenarios run unchanged on
  real sockets.

Time discipline: protocol code thinks in simulation time units; an
:class:`AsyncioTransport` maps them to wall-clock seconds through
``time_scale`` (seconds per unit), applied to both timers and injected
delays, so a DKG timeout policy tuned in the simulator behaves
identically on the wire.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.hashing import commitment_digest
from repro.net import wire
from repro.obs import metrics as obs_metrics
from repro.net.peers import PeerRegistry
from repro.runtime.envelope import SessionEnvelope
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel
from repro.sim.node import OutputRecord
from repro.sim.runner import Simulation

DEFAULT_TIME_SCALE = 0.02  # seconds of wall clock per simulation time unit
_CONNECT_ATTEMPTS = 20
_CONNECT_BACKOFF_S = 0.05
_MAX_PENDING_FRAMES = 1024  # digest frames held awaiting their matrix


@runtime_checkable
class Transport(Protocol):
    """What a :class:`~repro.runtime.driver.MachineDriver` needs from
    its backend."""

    def current_time(self) -> float:
        """Clock reading in protocol time units."""
        ...

    def member_ids(self) -> list[int]:
        """Sorted deployment membership."""
        ...

    def node_rng(self, node_id: int) -> random.Random:
        """Deterministic per-node randomness source."""
        ...

    def enqueue_message(self, sender: int, recipient: int, payload: Any) -> None:
        """Hand one protocol message to the network."""
        ...

    def set_timer(self, node: int, delay: float, tag: Any) -> int:
        """Arm a timer; returns a cancellation id."""
        ...

    def cancel_timer(self, node: int, timer_id: int) -> None:
        ...

    def record_output(self, node: int, payload: Any) -> None:
        """Emit an operator ``out`` message."""
        ...

    def record_leader_change(self) -> None:
        ...


class SimTransport:
    """Discrete-event backend: delegates to a :class:`Simulation`.

    ``Simulation`` itself satisfies :class:`Transport`; this adapter is
    the explicit seam where code written against the transport
    abstraction plugs into the simulator.
    """

    def __init__(self, simulation: Simulation):
        self.simulation = simulation

    def current_time(self) -> float:
        return self.simulation.current_time()

    def member_ids(self) -> list[int]:
        return self.simulation.member_ids()

    def node_rng(self, node_id: int) -> random.Random:
        return self.simulation.node_rng(node_id)

    def enqueue_message(self, sender: int, recipient: int, payload: Any) -> None:
        self.simulation.enqueue_message(sender, recipient, payload)

    def set_timer(self, node: int, delay: float, tag: Any) -> int:
        return self.simulation.set_timer(node, delay, tag)

    def cancel_timer(self, node: int, timer_id: int) -> None:
        self.simulation.cancel_timer(node, timer_id)

    def record_output(self, node: int, payload: Any) -> None:
        self.simulation.record_output(node, payload)

    def record_leader_change(self) -> None:
        self.simulation.record_leader_change()


@dataclass
class DropRetryLink(DelayModel):
    """A lossy link healed by retransmission, as a delay transform.

    Each drop costs one ``retry_delay``; after ``max_retries`` the
    message goes through regardless, preserving the asynchronous
    model's eventual-delivery guarantee (§2.1).  Composes with any base
    model, so loss can stack on top of latency or partitions.
    """

    base: DelayModel = None  # type: ignore[assignment]
    drop_probability: float = 0.1
    retry_delay: float = 5.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.base is None:
            from repro.sim.network import ConstantDelay

            self.base = ConstantDelay(0.0)
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")

    def observe_time(self, now: float) -> None:
        observe = getattr(self.base, "observe_time", None)
        if observe is not None:
            observe(now)

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        delay = self.base.sample(rng, sender, recipient)
        retries = 0
        while retries < self.max_retries and rng.random() < self.drop_probability:
            retries += 1
            delay += self.retry_delay
        return delay


class AsyncioTransport:
    """One node's real network endpoint: TCP frames on localhost/WAN.

    Incoming connections start with a 4-byte peer-index handshake (the
    stand-in for the paper's TLS-certified identity on a trusted local
    cluster); after it, the stream is a sequence of wire frames
    dispatched to ``on_message``.  Outgoing connections are opened
    lazily per recipient and re-dialed on failure; a message whose
    recipient stays unreachable is dropped — exactly the in-flight loss
    the hybrid model ascribes to crashed nodes (§2.2).
    """

    def __init__(
        self,
        node_id: int,
        registry: PeerRegistry,
        members: list[int],
        *,
        seed: int = 0,
        metrics: Metrics | None = None,
        delay_model: DelayModel | None = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        group: Any = None,
        codec: Any = None,
        host: str = "127.0.0.1",
        connect_attempts: int = _CONNECT_ATTEMPTS,
        connect_backoff: float = _CONNECT_BACKOFF_S,
    ):
        self.node_id = node_id
        self.registry = registry
        self.members = sorted(members)
        self.metrics = metrics if metrics is not None else Metrics()
        self.delay_model = delay_model
        self.time_scale = time_scale
        self.group = group
        self.codec = codec
        self.host = host
        self.seed = seed
        self.connect_attempts = connect_attempts
        self.connect_backoff = connect_backoff
        self.crashed = False
        self.outputs: list[OutputRecord] = []
        self.errors: list[Exception] = []
        self.output_event: asyncio.Event | None = None
        # Dispatch hooks, bound by the NodeHost.  Timers echo the
        # backend timer id so the driver can translate to the
        # machine-chosen id from the SetTimer effect.
        self.on_message: Callable[[int, Any], None] = lambda s, m: None
        self.on_timer: Callable[[Any, int], None] = lambda tag, timer_id: None

        self._net_rng = random.Random(("net", seed, node_id).__repr__())
        self._node_rngs: dict[int, random.Random] = {}
        # Cachin-style compression state (hashed codec): commitments we
        # have seen inline, and digest-only frames awaiting their matrix.
        self._commitments: dict[bytes, FeldmanCommitment] = {}
        self._pending_frames: dict[bytes, list[tuple[int, bytes]]] = {}
        self._pending_count = 0
        # Broadcast encode memo (identity-keyed, single entry).
        self._last_payload: Any = None
        self._last_mode = "inline"
        self._last_frame = b""
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._port: int | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._dial_locks: dict[int, asyncio.Lock] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._send_tasks: set[asyncio.Task] = set()
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._timer_seq = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the server socket and register our address."""
        self._loop = asyncio.get_running_loop()
        if self._t0 is None:
            self._t0 = self._loop.time()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._port or 0
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self.registry.register(self.node_id, self.host, self._port)
        if self.output_event is None:
            self.output_event = asyncio.Event()

    async def stop(self) -> None:
        """Tear the endpoint down completely (end of deployment)."""
        self._close_links()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for task in list(self._send_tasks):
            task.cancel()
        await self._drain_tasks()

    def crash(self) -> None:
        """Take the node's links down (§2.2: in-flight messages lost)."""
        self.crashed = True
        obs_metrics.counter_inc(
            "repro_net_crashes_total", help="endpoint crash transitions"
        )
        self._close_links()

    async def recover(self) -> None:
        """Come back up on the same address."""
        await self.start()
        self.crashed = False
        obs_metrics.counter_inc(
            "repro_net_recoveries_total", help="endpoint recovery transitions"
        )

    def _close_links(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        for task in list(self._reader_tasks):
            task.cancel()
        self._reader_tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    async def _drain_tasks(self) -> None:
        pending = list(self._send_tasks) + list(self._reader_tasks)
        for task in pending:
            if not task.done():
                task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- Transport protocol --------------------------------------------------

    def current_time(self) -> float:
        if self._loop is None or self._t0 is None:
            return 0.0
        return (self._loop.time() - self._t0) / self.time_scale

    def member_ids(self) -> list[int]:
        return list(self.members)

    def node_rng(self, node_id: int) -> random.Random:
        if node_id not in self._node_rngs:
            self._node_rngs[node_id] = random.Random(
                ("node", self.seed, node_id).__repr__()
            )
        return self._node_rngs[node_id]

    def enqueue_message(self, sender: int, recipient: int, payload: Any) -> None:
        if self.crashed or self._loop is None:
            return
        # Meter the protocol message, not the envelope wrapper: the
        # session id is transport framing (like the TCP header), and
        # keeping per-kind/per-byte accounting identical across
        # drivers is what makes sim-vs-real comparisons exact (E12).
        metered = (
            payload.payload if isinstance(payload, SessionEnvelope) else payload
        )
        self.metrics.record_send(sender, metered.kind, metered.byte_size())
        obs_metrics.counter_inc(
            "repro_net_frames_sent_total",
            help="wire frames sent, by protocol message kind",
            kind=metered.kind,
        )
        obs_metrics.counter_inc(
            "repro_net_bytes_sent_total",
            metered.byte_size(),
            help="wire bytes sent, by protocol message kind",
            kind=metered.kind,
        )
        # Under the hashed codec, echo/ready frames really do carry only
        # the 32-byte digest — the metered (stamped) size is the true
        # frame length in either mode.  Broadcasts hand the same payload
        # object to every recipient, so the last encoding is reused.
        mode = wire.commitment_mode(self.codec, payload)
        if payload is self._last_payload and mode == self._last_mode:
            frame = self._last_frame
        else:
            frame = wire.encode(payload, group=self.group, commitments=mode)
            self._last_payload, self._last_mode, self._last_frame = (
                payload,
                mode,
                frame,
            )
        delay_units = 0.0
        if self.delay_model is not None:
            observe = getattr(self.delay_model, "observe_time", None)
            if observe is not None:
                observe(self.current_time())
            delay_units = self.delay_model.sample(
                self._net_rng, sender, recipient
            )
        task = self._loop.create_task(
            self._deliver(recipient, frame, delay_units * self.time_scale)
        )
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def set_timer(self, node: int, delay: float, tag: Any) -> int:
        assert self._loop is not None, "transport not started"
        self._timer_seq += 1
        timer_id = self._timer_seq
        self.metrics.record_timer_set()
        deadline = self._loop.time() + delay * self.time_scale
        handle = self._loop.call_later(
            delay * self.time_scale, self._fire_timer, timer_id, tag, deadline
        )
        self._timers[timer_id] = handle
        return timer_id

    def cancel_timer(self, node: int, timer_id: int) -> None:
        handle = self._timers.pop(timer_id, None)
        if handle is not None:
            handle.cancel()

    def record_output(self, node: int, payload: Any) -> None:
        self.outputs.append(OutputRecord(node, self.current_time(), payload))
        self.metrics.record_completion(node, self.current_time())
        if self.output_event is not None:
            self.output_event.set()

    def record_leader_change(self) -> None:
        self.metrics.record_leader_change()

    # -- internals -----------------------------------------------------------

    def _fire_timer(
        self, timer_id: int, tag: Any, deadline: float | None = None
    ) -> None:
        self._timers.pop(timer_id, None)
        if deadline is not None and self._loop is not None:
            # How late the event loop ran this timer — the live proxy
            # for scheduler pressure on the node.
            obs_metrics.observe(
                "repro_net_timer_lag_seconds",
                max(0.0, self._loop.time() - deadline),
                help="delay between a timer's deadline and its callback",
            )
        if self.crashed:
            return  # a timer firing while down is lost, as in the simulator
        try:
            self.on_timer(tag, timer_id)
        except Exception as exc:  # pragma: no cover - defensive
            self.errors.append(exc)

    def _dispatch_frame(self, peer: int, frame: bytes) -> None:
        try:
            message = wire.decode(frame, resolve=self._commitments.get)
        except wire.UnresolvedDigest as exc:
            # Compressed vote arrived before the dealer's send; hold it
            # until the matrix shows up (the receiver-side cache the
            # Cachin trick presumes).  Under a non-hashed codec nothing
            # will ever resolve it, and the buffer is bounded against
            # peers flooding bogus digests.
            if (
                getattr(self.codec, "name", None) != "hashed-matrix"
                or self._pending_count >= _MAX_PENDING_FRAMES
            ):
                self.metrics.record_drop()
                return
            self._pending_frames.setdefault(exc.digest, []).append((peer, frame))
            self._pending_count += 1
            return
        except wire.WireError:
            self.metrics.record_drop()
            obs_metrics.counter_inc(
                "repro_net_frames_dropped_total",
                help="inbound frames dropped (undecodable or node down)",
            )
            return
        inner = message.payload if isinstance(message, SessionEnvelope) else message
        kind = getattr(inner, "kind", type(inner).__name__)
        obs_metrics.counter_inc(
            "repro_net_frames_received_total",
            help="wire frames received, by protocol message kind",
            kind=kind,
        )
        obs_metrics.counter_inc(
            "repro_net_bytes_received_total",
            len(frame),
            help="wire bytes received, by protocol message kind",
            kind=kind,
        )
        self._remember_commitment(message)
        try:
            self.on_message(peer, message)
        except Exception as exc:
            self.errors.append(exc)

    def _remember_commitment(self, message: Any) -> None:
        if getattr(self.codec, "name", None) != "hashed-matrix":
            return  # no compressed frames will ever reference the cache
        if isinstance(message, SessionEnvelope):
            message = message.payload
        commitment = getattr(message, "commitment", None)
        if not isinstance(commitment, FeldmanCommitment):
            return
        digest = commitment_digest(commitment)
        if digest in self._commitments:
            return
        self._commitments[digest] = commitment
        held = self._pending_frames.pop(digest, [])
        self._pending_count -= len(held)
        for peer, frame in held:
            self._dispatch_frame(peer, frame)

    async def _deliver(self, recipient: int, frame: bytes, delay_s: float) -> None:
        if delay_s > 0:
            await asyncio.sleep(delay_s)
        try:
            writer = await self._connect(recipient)
            writer.write(frame)
            await writer.drain()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._writers.pop(recipient, None)
            self.metrics.record_drop()

    async def _connect(self, recipient: int) -> asyncio.StreamWriter:
        # One dial at a time per recipient: concurrent sends before the
        # first connection completes must share it (a second parallel
        # connection would leak and could reorder frames).
        lock = self._dial_locks.setdefault(recipient, asyncio.Lock())
        async with lock:
            writer = self._writers.get(recipient)
            if writer is not None and not writer.is_closing():
                return writer
            last_error: Exception = ConnectionError(
                f"no route to node {recipient}"
            )
            for attempt in range(self.connect_attempts):
                if self.crashed:
                    break
                try:
                    address = self.registry.address_of(recipient)
                    _, writer = await asyncio.open_connection(
                        address.host, address.port
                    )
                    writer.write(self.node_id.to_bytes(4, "big"))
                    self._writers[recipient] = writer
                    obs_metrics.counter_inc(
                        "repro_net_connects_total",
                        help="outbound connections established",
                    )
                    return writer
                except (KeyError, ConnectionError, OSError) as exc:
                    last_error = exc
                    obs_metrics.counter_inc(
                        "repro_net_connect_retries_total",
                        help="failed outbound dial attempts (will back off)",
                    )
                    await asyncio.sleep(self.connect_backoff * (attempt + 1))
        raise ConnectionError(
            f"node {recipient} unreachable: {last_error}"
        ) from last_error

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            peer = int.from_bytes(await reader.readexactly(4), "big")
            while True:
                header = await reader.readexactly(4)
                length = int.from_bytes(header, "big")
                if length > wire.MAX_FRAME_BYTES:
                    break  # garbled stream; drop the connection
                body = await reader.readexactly(length)
                if self.crashed:
                    # Links are down: the frame is lost, and metered as
                    # such — same accounting as the simulator's
                    # delivery-to-crashed-node path.
                    self.metrics.record_drop()
                    obs_metrics.counter_inc(
                        "repro_net_frames_dropped_total",
                        help="inbound frames dropped (undecodable or node down)",
                    )
                    continue
                self._dispatch_frame(peer, header + body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away; it will re-dial if it needs us
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
