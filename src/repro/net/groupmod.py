"""Group modification over real sockets (§6 on the wire).

The full §6.1 + §6.2 lifecycle on live endpoints: the cluster
bootstraps a DKG as one session, agrees on an add-node proposal with a
Bracha-style reliable broadcast as a second session, brings up a real
endpoint for the joiner, and runs the node-addition protocol — the
existing members reshare their current shares, interpolate subshares
*for the joiner's index*, and the joiner verifies and interpolates its
new share — as a third session over the same sockets.  The system
commitment and the old members' shares are untouched, which the result
checks by reconstructing the secret from a mixed share set.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.shares import Share, reconstruct_secret
from repro.net.cluster import SessionCluster, bootstrap_dkg
from repro.net.transport import DEFAULT_TIME_SCALE
from repro.proactive.renewal import share_commitment_at
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg.config import DkgConfig
from repro.groupmod.addition import AdditionNode, JoiningNode
from repro.groupmod.agreement import GroupModAgreementNode
from repro.groupmod.messages import (
    ModProposal,
    NodeAddInput,
    ProposeInput,
)

AGREE_SESSION = "agree-1"
ADD_SESSION = "add-1"
DELIVERED_KIND = "groupmod.out.delivered"
JOINED_KIND = "groupmod.out.joined"


@dataclass
class GroupModClusterResult:
    """Outcome of one agree-then-add lifecycle over asyncio TCP."""

    config: DkgConfig
    seed: int
    new_node: int
    public_key: Any
    agreement_nodes: list[int]
    joined_share: int | None
    share_verified: bool
    secret_invariant: bool
    crashed: set[int]
    metrics: Metrics
    wall_seconds: float
    errors: list[Exception] = field(default_factory=list)
    # The committee's key material: the system commitment plus every
    # member's share (the joiner included when it joined).  With these a
    # successful result duck-types a DKG outcome, so a committee grown
    # over real TCP can be commissioned directly as a ThresholdService
    # (the shard router's ``commission="tcp"`` add path).
    commitment: Any = None
    shares: dict[int, int] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return (
            not self.errors
            and self.joined_share is not None
            and self.share_verified
            and self.secret_invariant
        )


def run_groupmod_cluster(
    config: DkgConfig,
    seed: int = 0,
    *,
    new_node: int | None = None,
    delay_model: DelayModel | None = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    crash_plan: list[tuple[int, float, float | None]] | None = None,
    timeout: float = 60.0,
) -> GroupModClusterResult:
    """Bootstrap, agree on an add proposal, and deliver the joiner its
    share — all over one set of real asyncio TCP endpoints.

    ``crash_plan`` entries are ``(node, at, up_after-or-None)`` with
    ``at`` in protocol time units *from the start of the addition
    phase* (the resharing is the crash-sensitive window).
    """

    async def _run() -> GroupModClusterResult:
        members = config.vss().indices
        joiner = new_node if new_node is not None else max(members) + 1
        if joiner in members:
            raise ValueError(f"node {joiner} is already a member")
        enroll_rng = random.Random(("net-groupmod-pki", seed).__repr__())
        ca = CertificateAuthority(config.group)
        keystores = {i: KeyStore.enroll(i, ca, enroll_rng) for i in members}
        cluster = SessionCluster(
            list(members),
            seed=seed,
            group=config.group,
            codec=config.codec,
            delay_model=delay_model,
            time_scale=time_scale,
        )
        try:
            await cluster.start()
            loop = asyncio.get_running_loop()
            t_start = loop.time()

            # Session 1 — bootstrap DKG.
            boot = await bootstrap_dkg(
                cluster, config, keystores, ca, timeout=timeout
            )
            commitment, shares = boot.commitment, boot.shares
            secret_before = reconstruct_secret(
                [Share(i, v, commitment) for i, v in shares.items()],
                config.t,
                config.group.q,
            )

            # Session 2 — §6.1 agreement on the add proposal.
            vss_config = config.vss()
            proposal = ModProposal("add", joiner)
            cluster.open_session(
                AGREE_SESSION,
                {i: GroupModAgreementNode(i, vss_config) for i in members},
            )
            cluster.inject(AGREE_SESSION, min(members), ProposeInput(proposal))
            delivered = await cluster.wait_session_outputs(
                AGREE_SESSION, DELIVERED_KIND, set(members), timeout
            )
            if len(delivered) < vss_config.output_threshold:
                raise RuntimeError(
                    f"agreement delivered at only {sorted(delivered)}"
                )

            # Session 3 — §6.2 node addition over a real joiner endpoint.
            await cluster.add_member(joiner)
            cluster.schedule_crashes_from_now(list(crash_plan or []))
            add_nodes: dict[int, Any] = {
                i: AdditionNode(
                    i,
                    config,
                    keystores[i],
                    ca,
                    new_node=joiner,
                    current_share=shares[i],
                    current_commitment=commitment,
                    tau=1,
                )
                for i in members
            }
            add_nodes[joiner] = JoiningNode(
                joiner,
                t=config.t,
                group_q=config.group.q,
                expected_share_pk=share_commitment_at(commitment, joiner),
            )
            cluster.open_session(ADD_SESSION, add_nodes)
            for i in members:
                cluster.inject(ADD_SESSION, i, NodeAddInput(joiner, 1))
            joined = await cluster.wait_session_outputs(
                ADD_SESSION, JOINED_KIND, {joiner}, timeout
            )
            await cluster.settle_recoveries()
            joined_share = (
                joined[joiner].share if joiner in joined else None
            )
            share_verified = joined_share is not None and config.group.commit(
                joined_share
            ) == share_commitment_at(commitment, joiner)

            # The joiner's share lies on the *original* polynomial:
            # reconstruct from a mixed old/new share set.
            secret_invariant = False
            if joined_share is not None:
                mixed = [Share(joiner, joined_share, commitment)] + [
                    Share(i, shares[i], commitment)
                    for i in sorted(shares)[: config.t]
                ]
                secret_invariant = (
                    reconstruct_secret(mixed, config.t, config.group.q)
                    == secret_before
                )
            return GroupModClusterResult(
                config=config,
                seed=seed,
                new_node=joiner,
                public_key=boot.public_key,
                agreement_nodes=sorted(delivered),
                joined_share=joined_share,
                share_verified=share_verified,
                secret_invariant=secret_invariant,
                crashed=set(cluster.crashed),
                metrics=cluster.metrics,
                wall_seconds=loop.time() - t_start,
                errors=cluster.collect_errors(),
                commitment=commitment,
                shares=dict(shares)
                if joined_share is None
                else {**shares, joiner: joined_share},
            )
        finally:
            await cluster.stop()

    return asyncio.run(_run())
