"""Peer addressing: node index -> (host, port).

The paper's system model (§2.3) gives every node a unique index bound
to its identity by the PKI; the network layer additionally needs a
routable address per index.  A :class:`PeerRegistry` is that map.  For
a :class:`~repro.net.cluster.LocalCluster` the registry is filled in as
each host binds an ephemeral localhost port; a real deployment would
load it from configuration instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PeerAddress:
    """Where a node's transport endpoint listens."""

    node_id: int
    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"P{self.node_id}@{self.host}:{self.port}"


class PeerRegistry:
    """Mutable index -> address map shared by a deployment's transports.

    Registration may happen after construction (ephemeral ports are
    only known once servers bind), so lookups raise :class:`KeyError`
    until the peer has registered.
    """

    def __init__(self, addresses: dict[int, PeerAddress] | None = None):
        self._addresses: dict[int, PeerAddress] = dict(addresses or {})

    @classmethod
    def static(cls, host: str, ports: dict[int, int]) -> "PeerRegistry":
        """A fully specified registry (e.g. from a config file)."""
        return cls(
            {i: PeerAddress(i, host, port) for i, port in ports.items()}
        )

    def register(self, node_id: int, host: str, port: int) -> PeerAddress:
        address = PeerAddress(node_id, host, port)
        self._addresses[node_id] = address
        return address

    def unregister(self, node_id: int) -> None:
        self._addresses.pop(node_id, None)

    def address_of(self, node_id: int) -> PeerAddress:
        try:
            return self._addresses[node_id]
        except KeyError:
            raise KeyError(f"no registered address for node {node_id}") from None

    def knows(self, node_id: int) -> bool:
        return node_id in self._addresses

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self):
        return iter(sorted(self._addresses))

    def member_ids(self) -> list[int]:
        return sorted(self._addresses)
