"""Proactive share renewal over real sockets (§5 on the wire).

Before the session-multiplexing runtime, :class:`ProactiveSystem` was
simulator-only: each phase spun up a fresh discrete-event world.  Here
the *same* long-lived cluster endpoints carry the whole lifecycle —
the bootstrap DKG runs as one session, then every renewal phase opens
a new session over the same n sockets, exactly the paper's picture of
a long-lived node running protocol instance after protocol instance
over one network identity.  Crash/recovery entries hit the endpoint
(taking down every session on it) and the recovering node replays its
B logs per session.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.shares import Share, reconstruct_secret
from repro.net.cluster import SessionCluster, bootstrap_dkg
from repro.net.transport import DEFAULT_TIME_SCALE
from repro.proactive.messages import RenewedOutput, RenewInput
from repro.proactive.renewal import RenewalNode
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.dkg.config import DkgConfig

RENEWED_KIND = "proactive.out.renewed"


@dataclass
class NetPhaseReport:
    """One renewal phase as observed over the real network."""

    phase: int
    session: str
    renewed_nodes: list[int]
    public_key: Any
    public_key_stable: bool
    wall_seconds: float


@dataclass
class RenewalClusterResult:
    """Outcome of bootstrap + renewal phases over asyncio TCP."""

    config: DkgConfig
    seed: int
    public_key: Any
    bootstrap_nodes: list[int]
    phases: list[NetPhaseReport]
    crashed: set[int]
    metrics: Metrics
    secret_invariant: bool
    errors: list[Exception] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return (
            not self.errors
            and bool(self.phases)
            and all(p.public_key_stable for p in self.phases)
            and self.secret_invariant
        )


async def _renewal_phases(
    cluster: SessionCluster,
    config: DkgConfig,
    *,
    phases: int,
    keystores: dict[int, KeyStore],
    ca: CertificateAuthority,
    shares: dict[int, int],
    commitment: Any,
    public_key: Any,
    crash_plan: list[tuple[int, float, float | None]],
    timeout: float,
) -> tuple[list[NetPhaseReport], dict[int, int], Any]:
    loop = asyncio.get_running_loop()
    reports: list[NetPhaseReport] = []
    # Crash entries are relative to the *first renewal phase* (the
    # interesting window); offset them past the bootstrap's wall time.
    cluster.schedule_crashes_from_now(crash_plan)
    for phase in range(1, phases + 1):
        session = f"renew-{phase}"
        nodes = {
            i: RenewalNode(
                i,
                config,
                keystores[i],
                ca,
                phase=phase,
                prev_share=shares.get(i),
                prev_commitment=commitment,
            )
            for i in config.vss().indices
        }
        cluster.open_session(session, nodes)
        t_phase = loop.time()
        cluster.inject_all(session, RenewInput(phase))
        expected = cluster.finally_up()
        renewed: dict[int, RenewedOutput] = await cluster.wait_session_outputs(
            session, RENEWED_KIND, expected, timeout
        )
        if not renewed:
            raise RuntimeError(f"renewal phase {phase} did not complete")
        vectors = {out.commitment for out in renewed.values()}
        if len(vectors) != 1:
            raise AssertionError("renewal consistency violation")
        commitment = vectors.pop()
        # §5.1: safety over liveness — shares not renewed are gone.
        shares = {i: out.share for i, out in renewed.items()}
        reports.append(
            NetPhaseReport(
                phase=phase,
                session=session,
                renewed_nodes=sorted(renewed),
                public_key=commitment.public_key(),
                public_key_stable=commitment.public_key() == public_key,
                wall_seconds=loop.time() - t_phase,
            )
        )
    return reports, shares, commitment


def run_renewal_cluster(
    config: DkgConfig,
    seed: int = 0,
    *,
    phases: int = 1,
    delay_model: DelayModel | None = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    crash_plan: list[tuple[int, float, float | None]] | None = None,
    timeout: float = 60.0,
) -> RenewalClusterResult:
    """Bootstrap a DKG and run ``phases`` share-renewal phases, all
    over one set of real asyncio TCP endpoints.

    ``crash_plan`` entries are ``(node, at, up_after-or-None)`` with
    ``at`` in protocol time units *from the start of the first renewal
    phase* — the window the proactive model cares about.
    """

    async def _run() -> RenewalClusterResult:
        members = config.vss().indices
        enroll_rng = random.Random(("net-renewal-pki", seed).__repr__())
        ca = CertificateAuthority(config.group)
        keystores = {i: KeyStore.enroll(i, ca, enroll_rng) for i in members}
        cluster = SessionCluster(
            list(members),
            seed=seed,
            group=config.group,
            codec=config.codec,
            delay_model=delay_model,
            time_scale=time_scale,
        )
        try:
            await cluster.start()
            boot = await bootstrap_dkg(
                cluster, config, keystores, ca, timeout=timeout
            )
            secret_before = reconstruct_secret(
                [
                    Share(i, v, boot.commitment)
                    for i, v in boot.shares.items()
                ],
                config.t,
                config.group.q,
            )
            reports, shares, commitment = await _renewal_phases(
                cluster,
                config,
                phases=phases,
                keystores=keystores,
                ca=ca,
                shares=boot.shares,
                commitment=boot.commitment,
                public_key=boot.public_key,
                crash_plan=list(crash_plan or []),
                timeout=timeout,
            )
            await cluster.settle_recoveries()
            secret_after = reconstruct_secret(
                [Share(i, v, commitment) for i, v in shares.items()],
                config.t,
                config.group.q,
            )
            return RenewalClusterResult(
                config=config,
                seed=seed,
                public_key=boot.public_key,
                bootstrap_nodes=sorted(boot.completions),
                phases=reports,
                crashed=set(cluster.crashed),
                metrics=cluster.metrics,
                secret_invariant=secret_after == secret_before,
                errors=cluster.collect_errors(),
            )
        finally:
            await cluster.stop()

    return asyncio.run(_run())
