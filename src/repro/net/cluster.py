"""Real-socket clusters: n runtime endpoints, any number of sessions.

:class:`SessionCluster` is the generic orchestrator — it spawns one
:class:`~repro.net.host.NodeHost` per member index (each a
:class:`~repro.runtime.runtime.ProtocolRuntime` on its own server
socket with its own timers and metrics tap) and multiplexes named
protocol sessions over those endpoints: a DKG, four concurrent
presignature DKGs, a proactive renewal phase and a group-modification
agreement can all interleave on the same n sockets, every message
wrapped in the :class:`~repro.runtime.envelope.SessionEnvelope` wire
frame.  The byte streams are real: every protocol message is
serialized by :mod:`repro.net.wire`, crosses a kernel socket, and is
decoded on the far side.

:class:`LocalCluster` keeps the historic one-DKG-per-cluster surface
on top of it.

Fault injection mirrors the simulator's scenarios at the transport
level:

* added latency / partitions — pass any
  :class:`~repro.sim.network.DelayModel` (including
  :class:`~repro.sim.network.PartitionDelay`) as ``delay_model``;
* message loss healed by retransmission —
  :class:`~repro.net.transport.DropRetryLink`;
* crash (+ optional later recovery) — :meth:`SessionCluster.crash`
  entries, executed as wall-clock events against the live hosts (a
  crash takes down the endpoint, and with it *every* session on it).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dkg.config import DkgConfig
from repro.dkg.messages import DkgCompletedOutput, DkgStartInput
from repro.dkg.runner import build_dkg_deployment
from repro.net.host import NodeHost
from repro.net.peers import PeerRegistry
from repro.net.transport import DEFAULT_TIME_SCALE, AsyncioTransport
from repro.runtime.runtime import ProtocolRuntime
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel

COMPLETED_KIND = "dkg.out.completed"
DKG_SESSION = "dkg"


class SessionCluster:
    """n asyncio runtime endpoints multiplexing protocol sessions."""

    def __init__(
        self,
        members: list[int],
        *,
        seed: int = 0,
        group: Any = None,
        codec: Any = None,
        delay_model: DelayModel | None = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        host: str = "127.0.0.1",
    ):
        self.members = sorted(members)
        self.seed = seed
        self.group = group
        self.codec = codec
        self.delay_model = delay_model
        self.time_scale = time_scale
        self.host_address = host
        self.metrics = Metrics()
        self.registry = PeerRegistry()
        self.hosts: dict[int, NodeHost] = {}
        self.crashed: set[int] = set()
        self.errors: list[Exception] = []
        self._crash_plan: list[tuple[int, float, float | None]] = []
        self._fault_handles: list[asyncio.TimerHandle] = []
        self._recover_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0: float | None = None
        self._started = False
        for i in self.members:
            self._build_host(i)

    def _build_host(self, index: int) -> NodeHost:
        transport = AsyncioTransport(
            index,
            self.registry,
            self.members,
            seed=self.seed,
            metrics=self.metrics,
            delay_model=self.delay_model,
            time_scale=self.time_scale,
            group=self.group,
            codec=self.codec,
            host=self.host_address,
        )
        host = NodeHost(ProtocolRuntime(index), transport)
        self.hosts[index] = host
        return host

    # -- membership (§6.2: joiners get their own endpoint) ---------------------

    async def add_member(self, index: int) -> NodeHost:
        """Bring up an endpoint for a joining node (started if the
        cluster already runs).  Every existing endpoint's membership
        view is extended too, so Broadcast effects and ``Env.members``
        include the joiner from now on (protocol-level membership —
        which sharings count, what the thresholds are — still comes
        from each session's config, per §6)."""
        if index in self.hosts:
            raise ValueError(f"node {index} already has an endpoint")
        self.members = sorted(self.members + [index])
        for host in self.hosts.values():
            host.transport.members = list(self.members)
        host = self._build_host(index)
        if self._started:
            await host.start()
        return host

    # -- sessions --------------------------------------------------------------

    def open_session(self, session: str, nodes: dict[int, Any]) -> None:
        """Open protocol session ``session`` with ``nodes`` mapping a
        member index to its state machine for this instance."""
        for index, node in nodes.items():
            self.hosts[index].open_session(session, node)

    def inject(self, session: str, index: int, payload: Any) -> bool:
        """Operator input to one session at one node; False if dropped."""
        return self.hosts[index].inject(payload, session=session)

    def inject_all(self, session: str, payload: Any) -> dict[int, bool]:
        """Operator input to every node hosting ``session``."""
        return {
            i: self.inject(session, i, payload)
            for i, host in sorted(self.hosts.items())
            if session in host.runtime.sessions
        }

    async def wait_session_outputs(
        self,
        session: str,
        kind: str,
        nodes: set[int],
        timeout: float = 60.0,
    ) -> dict[int, Any]:
        """Wait until every node in ``nodes`` emitted a ``kind`` output
        within ``session`` (or the wall-clock timeout passes); returns
        whatever arrived."""
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(
                        self.hosts[i].wait_for_output(kind, session=session)
                        for i in sorted(nodes)
                    )
                ),
                timeout,
            )
        except asyncio.TimeoutError:
            pass  # partial result; the caller inspects completeness
        found: dict[int, Any] = {}
        for i, host in self.hosts.items():
            outputs = host.outputs_of_kind(kind, session=session)
            if outputs:
                found[i] = outputs[0].payload
        return found

    # -- fault injection -------------------------------------------------------

    def elapsed_units(self) -> float:
        """Protocol time units since cluster start (0 before start)."""
        if self._loop is None or self._t0 is None:
            return 0.0
        return (self._loop.time() - self._t0) / self.time_scale

    def schedule_crashes_from_now(
        self, entries: list[tuple[int, float, float | None]]
    ) -> None:
        """Register crash-plan entries whose ``at`` is relative to *this
        moment* rather than cluster start — how the lifecycle runners
        aim a fault at one specific protocol phase."""
        now_units = self.elapsed_units()
        for node, at, up_after in entries:
            self.crash(node, now_units + at, up_after)

    def crash(self, node: int, at: float, up_after: float | None = None) -> None:
        """Crash ``node`` at time ``at`` (protocol units); if
        ``up_after`` is given, recover it that much later — the same
        shape as the simulator adversary's crash plan.  Entries added
        after :meth:`start` are scheduled immediately."""
        if node not in self.hosts:
            raise KeyError(f"unknown node {node}")
        entry = (node, at, up_after)
        self._crash_plan.append(entry)
        if self._started and self._loop is not None:
            self._schedule_entry(self._loop, entry)

    def _schedule_faults(self, loop: asyncio.AbstractEventLoop) -> None:
        for entry in self._crash_plan:
            self._schedule_entry(loop, entry)

    def _schedule_entry(
        self, loop: asyncio.AbstractEventLoop, entry: tuple[int, float, float | None]
    ) -> None:
        # ``at`` is absolute protocol time from cluster start (the
        # simulator crash plan's semantics), so entries registered
        # after start() are scheduled against the elapsed clock.
        node, at, up_after = entry
        elapsed = loop.time() - self._t0 if self._t0 is not None else 0.0
        self._fault_handles.append(
            loop.call_later(
                max(0.0, at * self.time_scale - elapsed), self._crash_now, node
            )
        )
        if up_after is not None:
            self._fault_handles.append(
                loop.call_later(
                    max(0.0, (at + up_after) * self.time_scale - elapsed),
                    self._recover_now,
                    node,
                )
            )

    def _crash_now(self, node: int) -> None:
        self.hosts[node].crash()
        self.crashed.add(node)
        self.metrics.record_crash()

    def _recover_now(self, node: int) -> None:
        task = asyncio.ensure_future(self._do_recover(node))
        self._recover_tasks.add(task)
        task.add_done_callback(self._recover_tasks.discard)

    async def _do_recover(self, node: int) -> None:
        try:
            await self.hosts[node].recover()
        except Exception as exc:
            # The node stays in `crashed`: a failed rebind is a real
            # fault, surfaced on the result rather than lost in a task.
            self.errors.append(exc)
            return
        self.crashed.discard(node)
        self.metrics.record_recovery()

    async def settle_recoveries(self, timeout: float = 30.0) -> None:
        """Wait until every planned crash-and-recover entry has actually
        run (a protocol can outrace its fault plan; smokes and tests
        want the recovery to have happened before teardown)."""
        planned = {node for node, _at, up in self._crash_plan if up is not None}
        if not planned or self._loop is None:
            return
        deadline = self._loop.time() + timeout
        while self._loop.time() < deadline:
            latest = max(
                (h.when() for h in self._fault_handles), default=0.0
            )
            if (
                self._loop.time() >= latest
                and not self._recover_tasks
                and not planned & self.crashed
            ):
                return
            await asyncio.sleep(0.02)

    def finally_up(self) -> set[int]:
        """Nodes the paper's liveness clause obligates to finish: every
        member not left crashed by the fault plan."""
        down = {
            node
            for node, _at, up_after in self._crash_plan
            if up_after is None
        }
        return {i for i in self.hosts if i not in down}

    def collect_errors(self) -> list[Exception]:
        errors = list(self.errors)
        for host in self.hosts.values():
            errors.extend(host.transport.errors)
        return errors

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        for hst in self.hosts.values():
            await hst.start()
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._schedule_faults(self._loop)
        self._started = True

    async def stop(self) -> None:
        for handle in self._fault_handles:
            handle.cancel()
        self._fault_handles.clear()
        for task in list(self._recover_tasks):
            task.cancel()
        if self._recover_tasks:
            await asyncio.gather(*self._recover_tasks, return_exceptions=True)
        await asyncio.gather(
            *(hst.stop() for hst in self.hosts.values()),
            return_exceptions=True,
        )

    async def __aenter__(self) -> "SessionCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()


@dataclass
class DkgBootstrap:
    """The agreed world state a bootstrap DKG session establishes."""

    completions: dict[int, DkgCompletedOutput]
    commitment: Any
    public_key: Any
    shares: dict[int, int]


async def bootstrap_dkg(
    cluster: SessionCluster,
    config: DkgConfig,
    keystores: dict[int, Any],
    ca: Any,
    *,
    session: str = DKG_SESSION,
    tau: int = 0,
    timeout: float = 60.0,
) -> DkgBootstrap:
    """Run one DKG as a session on ``cluster`` and return the agreed
    commitment/shares — the first step of every multi-protocol
    lifecycle (renewal phases, group modification)."""
    from repro.dkg.node import DkgNode

    members = config.vss().indices
    cluster.open_session(
        session,
        {i: DkgNode(i, config, keystores[i], ca, tau=tau) for i in members},
    )
    cluster.inject_all(session, DkgStartInput(tau))
    completions = await cluster.wait_session_outputs(
        session, COMPLETED_KIND, set(members), timeout
    )
    if not completions:
        raise RuntimeError("bootstrap DKG did not complete")
    commitments = {out.commitment for out in completions.values()}
    if len(commitments) != 1:
        raise AssertionError("bootstrap commitment disagreement")
    commitment = commitments.pop()
    return DkgBootstrap(
        completions=completions,
        commitment=commitment,
        public_key=commitment.public_key(),
        shares={i: out.share for i, out in completions.items()},
    )


@dataclass
class ClusterResult:
    """Outcome of one real-network DKG session."""

    config: DkgConfig
    seed: int
    completions: dict[int, DkgCompletedOutput]
    metrics: Metrics
    wall_seconds: float
    crashed: set[int] = field(default_factory=set)
    expected: set[int] = field(default_factory=set)
    errors: list[Exception] = field(default_factory=list)

    @property
    def completed_nodes(self) -> list[int]:
        return sorted(self.completions)

    @property
    def succeeded(self) -> bool:
        """Every honest, finally-up node completed; no handler errors;
        and all completions agree (Definition 4.1 agreement)."""
        if self.errors:
            return False
        if not self.expected <= set(self.completions):
            return False
        try:
            self.public_key
            self.q_set
        except AssertionError:
            return False
        return True

    @property
    def public_key(self) -> int:
        keys = {out.public_key for out in self.completions.values()}
        if len(keys) != 1:
            raise AssertionError(f"public key disagreement: {len(keys)} keys")
        return keys.pop()

    @property
    def q_set(self) -> tuple[int, ...]:
        sets = {out.q_set for out in self.completions.values()}
        if len(sets) != 1:
            raise AssertionError("agreement violation: divergent Q sets")
        return sets.pop()

    @property
    def shares(self) -> dict[int, int]:
        return {i: out.share for i, out in self.completions.items()}


class LocalCluster(SessionCluster):
    """n asyncio hosts on localhost running one DKG session.

    The historic single-protocol surface: the DKG rides as the
    runtime's default session, so this class is now a thin veneer over
    :class:`SessionCluster` (and additional sessions can still be
    opened beside the DKG).
    """

    def __init__(
        self,
        config: DkgConfig,
        seed: int = 0,
        tau: int = 0,
        *,
        delay_model: DelayModel | None = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        host: str = "127.0.0.1",
        secrets: dict[int, int] | None = None,
        node_factory: Callable[..., Any] | None = None,
    ):
        self.config = config
        self.tau = tau
        self.ca, self.nodes = build_dkg_deployment(
            config, seed=seed, tau=tau, secrets=secrets, node_factory=node_factory
        )
        super().__init__(
            config.vss().indices,
            seed=seed,
            group=config.group,
            codec=config.codec,
            delay_model=delay_model,
            time_scale=time_scale,
            host=host,
        )
        self.open_session(DKG_SESSION, self.nodes)

    # -- the protocol run ------------------------------------------------------

    async def run_dkg(self, timeout: float = 60.0) -> ClusterResult:
        """Drive one DKG to completion; ``timeout`` in wall seconds."""
        await self.start()
        loop = asyncio.get_running_loop()
        t_start = loop.time()
        self.inject_all(DKG_SESSION, DkgStartInput(self.tau))
        expected = self.finally_up()
        completions = await self.wait_session_outputs(
            DKG_SESSION, COMPLETED_KIND, expected, timeout
        )
        wall = loop.time() - t_start
        return ClusterResult(
            config=self.config,
            seed=self.seed,
            completions=completions,
            metrics=self.metrics,
            wall_seconds=wall,
            crashed=set(self.crashed),
            expected=expected,
            errors=self.collect_errors(),
        )


def run_local_cluster(
    config: DkgConfig,
    seed: int = 0,
    tau: int = 0,
    *,
    delay_model: DelayModel | None = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    crash_plan: list[tuple[int, float, float | None]] | None = None,
    timeout: float = 60.0,
) -> ClusterResult:
    """Synchronous convenience wrapper: spawn, run one DKG, tear down.

    ``crash_plan`` entries are ``(node, at, up_after-or-None)`` in
    protocol time units, exactly like the simulator adversary's.
    """

    async def _run() -> ClusterResult:
        cluster = LocalCluster(
            config,
            seed=seed,
            tau=tau,
            delay_model=delay_model,
            time_scale=time_scale,
        )
        for node, at, up_after in crash_plan or []:
            cluster.crash(node, at, up_after)
        try:
            return await cluster.run_dkg(timeout=timeout)
        finally:
            await cluster.stop()

    return asyncio.run(_run())
