"""LocalCluster: a full DKG over real asyncio TCP on localhost.

The orchestrator spawns one :class:`~repro.net.host.NodeHost` per
member index — each with its own server socket, outbound connections,
timers and metrics tap — injects the operator ``start`` inputs, and
waits until every honest, finally-up node has output
``(DKG-completed, C, s_i)``.  The byte streams between hosts are real:
every protocol message is serialized by :mod:`repro.net.wire`, crosses
a kernel socket, and is decoded on the far side.

Fault injection mirrors the simulator's scenarios at the transport
level:

* added latency / partitions — pass any
  :class:`~repro.sim.network.DelayModel` (including
  :class:`~repro.sim.network.PartitionDelay`) as ``delay_model``;
* message loss healed by retransmission —
  :class:`~repro.net.transport.DropRetryLink`;
* crash (+ optional later recovery) — :meth:`LocalCluster.crash`
  entries, executed as wall-clock events against the live hosts.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dkg.config import DkgConfig
from repro.dkg.messages import DkgCompletedOutput, DkgStartInput
from repro.dkg.runner import build_dkg_deployment
from repro.net.host import NodeHost
from repro.net.peers import PeerRegistry
from repro.net.transport import DEFAULT_TIME_SCALE, AsyncioTransport
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel

COMPLETED_KIND = "dkg.out.completed"


@dataclass
class ClusterResult:
    """Outcome of one real-network DKG session."""

    config: DkgConfig
    seed: int
    completions: dict[int, DkgCompletedOutput]
    metrics: Metrics
    wall_seconds: float
    crashed: set[int] = field(default_factory=set)
    expected: set[int] = field(default_factory=set)
    errors: list[Exception] = field(default_factory=list)

    @property
    def completed_nodes(self) -> list[int]:
        return sorted(self.completions)

    @property
    def succeeded(self) -> bool:
        """Every honest, finally-up node completed; no handler errors;
        and all completions agree (Definition 4.1 agreement)."""
        if self.errors:
            return False
        if not self.expected <= set(self.completions):
            return False
        try:
            self.public_key
            self.q_set
        except AssertionError:
            return False
        return True

    @property
    def public_key(self) -> int:
        keys = {out.public_key for out in self.completions.values()}
        if len(keys) != 1:
            raise AssertionError(f"public key disagreement: {len(keys)} keys")
        return keys.pop()

    @property
    def q_set(self) -> tuple[int, ...]:
        sets = {out.q_set for out in self.completions.values()}
        if len(sets) != 1:
            raise AssertionError("agreement violation: divergent Q sets")
        return sets.pop()

    @property
    def shares(self) -> dict[int, int]:
        return {i: out.share for i, out in self.completions.items()}


class LocalCluster:
    """n asyncio hosts on localhost running one DKG session."""

    def __init__(
        self,
        config: DkgConfig,
        seed: int = 0,
        tau: int = 0,
        *,
        delay_model: DelayModel | None = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        host: str = "127.0.0.1",
        secrets: dict[int, int] | None = None,
        node_factory: Callable[..., Any] | None = None,
    ):
        self.config = config
        self.seed = seed
        self.tau = tau
        self.time_scale = time_scale
        self.metrics = Metrics()
        self.registry = PeerRegistry()
        self.ca, self.nodes = build_dkg_deployment(
            config, seed=seed, tau=tau, secrets=secrets, node_factory=node_factory
        )
        members = config.vss().indices
        self.hosts: dict[int, NodeHost] = {}
        for i, node in self.nodes.items():
            transport = AsyncioTransport(
                i,
                self.registry,
                members,
                seed=seed,
                metrics=self.metrics,
                delay_model=delay_model,
                time_scale=time_scale,
                group=config.group,
                codec=config.codec,
                host=host,
            )
            self.hosts[i] = NodeHost(node, transport)
        self.crashed: set[int] = set()
        self.errors: list[Exception] = []
        self._crash_plan: list[tuple[int, float, float | None]] = []
        self._fault_handles: list[asyncio.TimerHandle] = []
        self._recover_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0: float | None = None
        self._started = False

    # -- fault injection ------------------------------------------------------

    def crash(self, node: int, at: float, up_after: float | None = None) -> None:
        """Crash ``node`` at time ``at`` (protocol units); if
        ``up_after`` is given, recover it that much later — the same
        shape as the simulator adversary's crash plan.  Entries added
        after :meth:`start` are scheduled immediately."""
        if node not in self.hosts:
            raise KeyError(f"unknown node {node}")
        entry = (node, at, up_after)
        self._crash_plan.append(entry)
        if self._started and self._loop is not None:
            self._schedule_entry(self._loop, entry)

    def _schedule_faults(self, loop: asyncio.AbstractEventLoop) -> None:
        for entry in self._crash_plan:
            self._schedule_entry(loop, entry)

    def _schedule_entry(
        self, loop: asyncio.AbstractEventLoop, entry: tuple[int, float, float | None]
    ) -> None:
        # ``at`` is absolute protocol time from cluster start (the
        # simulator crash plan's semantics), so entries registered
        # after start() are scheduled against the elapsed clock.
        node, at, up_after = entry
        elapsed = loop.time() - self._t0 if self._t0 is not None else 0.0
        self._fault_handles.append(
            loop.call_later(
                max(0.0, at * self.time_scale - elapsed), self._crash_now, node
            )
        )
        if up_after is not None:
            self._fault_handles.append(
                loop.call_later(
                    max(0.0, (at + up_after) * self.time_scale - elapsed),
                    self._recover_now,
                    node,
                )
            )

    def _crash_now(self, node: int) -> None:
        self.hosts[node].crash()
        self.crashed.add(node)
        self.metrics.record_crash()

    def _recover_now(self, node: int) -> None:
        task = asyncio.ensure_future(self._do_recover(node))
        self._recover_tasks.add(task)
        task.add_done_callback(self._recover_tasks.discard)

    async def _do_recover(self, node: int) -> None:
        try:
            await self.hosts[node].recover()
        except Exception as exc:
            # The node stays in `crashed`: a failed rebind is a real
            # fault, surfaced on the result rather than lost in a task.
            self.errors.append(exc)
            return
        self.crashed.discard(node)
        self.metrics.record_recovery()

    def finally_up(self) -> set[int]:
        """Nodes the paper's liveness clause obligates to finish: every
        member not left crashed by the fault plan."""
        down = {
            node
            for node, _at, up_after in self._crash_plan
            if up_after is None
        }
        return {i for i in self.hosts if i not in down}

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        for hst in self.hosts.values():
            await hst.start()
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._schedule_faults(self._loop)
        self._started = True

    async def stop(self) -> None:
        for handle in self._fault_handles:
            handle.cancel()
        self._fault_handles.clear()
        for task in list(self._recover_tasks):
            task.cancel()
        if self._recover_tasks:
            await asyncio.gather(*self._recover_tasks, return_exceptions=True)
        await asyncio.gather(
            *(hst.stop() for hst in self.hosts.values()),
            return_exceptions=True,
        )

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- the protocol run ------------------------------------------------------

    async def run_dkg(self, timeout: float = 60.0) -> ClusterResult:
        """Drive one DKG to completion; ``timeout`` in wall seconds."""
        await self.start()
        loop = asyncio.get_running_loop()
        t_start = loop.time()
        for i in self.hosts:
            self.hosts[i].inject(DkgStartInput(self.tau))
        expected = self.finally_up()
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(
                        self.hosts[i].wait_for_output(COMPLETED_KIND)
                        for i in sorted(expected)
                    )
                ),
                timeout,
            )
        except asyncio.TimeoutError:
            pass  # partial result; succeeded will be False
        wall = loop.time() - t_start
        completions: dict[int, DkgCompletedOutput] = {}
        errors: list[Exception] = list(self.errors)
        for i, hst in self.hosts.items():
            found = hst.outputs_of_kind(COMPLETED_KIND)
            if found:
                completions[i] = found[0].payload
            errors.extend(hst.transport.errors)
        return ClusterResult(
            config=self.config,
            seed=self.seed,
            completions=completions,
            metrics=self.metrics,
            wall_seconds=wall,
            crashed=set(self.crashed),
            expected=expected,
            errors=errors,
        )


def run_local_cluster(
    config: DkgConfig,
    seed: int = 0,
    tau: int = 0,
    *,
    delay_model: DelayModel | None = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    crash_plan: list[tuple[int, float, float | None]] | None = None,
    timeout: float = 60.0,
) -> ClusterResult:
    """Synchronous convenience wrapper: spawn, run one DKG, tear down.

    ``crash_plan`` entries are ``(node, at, up_after-or-None)`` in
    protocol time units, exactly like the simulator adversary's.
    """

    async def _run() -> ClusterResult:
        cluster = LocalCluster(
            config,
            seed=seed,
            tau=tau,
            delay_model=delay_model,
            time_scale=time_scale,
        )
        for node, at, up_after in crash_plan or []:
            cluster.crash(node, at, up_after)
        try:
            return await cluster.run_dkg(timeout=timeout)
        finally:
            await cluster.stop()

    return asyncio.run(_run())
