"""repro.net — a real network runtime for the VSS/DKG stack.

The paper is about running DKG *over the Internet*; this package makes
the reproduction's node state machines executable outside the
discrete-event simulator:

* :mod:`repro.net.wire` — a canonical, versioned binary codec that
  round-trips every protocol payload (length-prefixed frames);
* :mod:`repro.net.peers` — addressing: node index -> (host, port);
* :mod:`repro.net.transport` — the :class:`Transport` protocol behind
  :class:`~repro.sim.node.Context`, with :class:`SimTransport`
  (discrete-event) and :class:`AsyncioTransport` (real TCP) backends;
* :mod:`repro.net.host` — :class:`NodeHost`, one node on a transport;
* :mod:`repro.net.cluster` — :class:`LocalCluster`, n asyncio hosts on
  localhost running a full DKG, with transport-level fault injection.
"""

from repro.net.cluster import ClusterResult, LocalCluster, run_local_cluster
from repro.net.host import NodeHost
from repro.net.peers import PeerAddress, PeerRegistry
from repro.net.transport import AsyncioTransport, DropRetryLink, SimTransport, Transport
from repro.net.wire import WireError, decode, encode, encoded_size, stamp

__all__ = [
    "AsyncioTransport",
    "ClusterResult",
    "DropRetryLink",
    "LocalCluster",
    "NodeHost",
    "PeerAddress",
    "PeerRegistry",
    "SimTransport",
    "Transport",
    "WireError",
    "decode",
    "encode",
    "encoded_size",
    "run_local_cluster",
    "stamp",
]
