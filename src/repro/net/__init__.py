"""repro.net — a real network runtime for the VSS/DKG stack.

The paper is about running DKG *over the Internet*; this package makes
the reproduction's node state machines executable outside the
discrete-event simulator:

* :mod:`repro.net.wire` — a canonical, versioned binary codec that
  round-trips every protocol payload (length-prefixed frames);
* :mod:`repro.net.peers` — addressing: node index -> (host, port);
* :mod:`repro.net.transport` — the :class:`Transport` protocol the
  :class:`~repro.runtime.driver.MachineDriver` interprets effects
  against, with :class:`SimTransport` (discrete-event) and
  :class:`AsyncioTransport` (real TCP) backends;
* :mod:`repro.net.host` — :class:`NodeHost`, one runtime endpoint
  (any number of protocol sessions) on a transport;
* :mod:`repro.net.cluster` — :class:`SessionCluster`, n asyncio
  runtime endpoints multiplexing named protocol sessions, and
  :class:`LocalCluster`, the one-DKG convenience on top of it, both
  with transport-level fault injection;
* :mod:`repro.net.proactive` / :mod:`repro.net.groupmod` — the §5
  share-renewal and §6 group-modification lifecycles over real
  sockets.
"""

from repro.net.cluster import (
    ClusterResult,
    LocalCluster,
    SessionCluster,
    run_local_cluster,
)
from repro.net.groupmod import GroupModClusterResult, run_groupmod_cluster
from repro.net.host import NodeHost
from repro.net.peers import PeerAddress, PeerRegistry
from repro.net.proactive import RenewalClusterResult, run_renewal_cluster
from repro.net.transport import AsyncioTransport, DropRetryLink, SimTransport, Transport
from repro.net.wire import WireError, decode, encode, encoded_size, stamp

__all__ = [
    "AsyncioTransport",
    "ClusterResult",
    "DropRetryLink",
    "GroupModClusterResult",
    "LocalCluster",
    "NodeHost",
    "PeerAddress",
    "PeerRegistry",
    "RenewalClusterResult",
    "SessionCluster",
    "SimTransport",
    "Transport",
    "WireError",
    "decode",
    "encode",
    "encoded_size",
    "run_groupmod_cluster",
    "run_local_cluster",
    "run_renewal_cluster",
    "stamp",
]
