"""Canonical binary wire codec for every protocol payload.

Frames are length-prefixed and versioned::

    [u32 length] [b"KG"] [u8 version] [u8 kind] [body]

where ``length`` counts everything after the 4 length bytes.  The body
is a fixed-width field layout chosen to match the paper's communication
accounting: node indices are 2 bytes (:data:`INDEX_BYTES`), session
identifiers 8, views 2, taus 4, digests 32, and scalars/group elements
occupy exactly ``group.scalar_bytes`` / ``group.element_bytes``.  With
those widths, :func:`encoded_size` is value-independent, so stamping
``Payload.byte_size()`` from the codec gives the *true* serialized
length (the E1/E3 communication measurements) while staying
deterministic across runs.

Commitment compression (Cachin et al., the paper's §3 efficiency note)
is a first-class wire feature: ``echo``/``ready`` frames may carry the
32-byte commitment digest instead of the full matrix
(``commitments="digest"``); decoding such a frame needs a ``resolve``
callable mapping digests to previously seen commitments — exactly the
cache a receiver builds from the dealer's ``send``.

Covered payloads: everything in :mod:`repro.vss.messages`,
:mod:`repro.dkg.messages` and :mod:`repro.proactive.messages`,
including operator in/out records so hosts can checkpoint them.  (The
group-modification layer of §6 keeps its simulator-only cost models and
is not framed here.)

Codec **version 2** adds the client-facing service frames of
:mod:`repro.service.protocol` (kinds ``0x30+``): SIGN, BEACON_NEXT,
BEACON_GET, DPRF_EVAL, DECRYPT, STATUS and their responses.  Frames
are stamped with the minimum version able to decode them — protocol
kinds stay byte-identical to v1, so mixed-version clusters keep
interoperating; service kinds claiming version 1 are rejected — they
did not exist.

Codec **version 3** makes element fields backend-typed: group elements
travel in the owning group's canonical serialization (fixed-width
residues for modp — byte-identical to v2 — or 33-byte compressed
points for secp256k1), groups resolve by registry name for every
backend, and ``STATUS`` responses carry the group name *before* the
public key so the element decodes without out-of-band context
(``STATUS`` is therefore the one kind whose layout changed; v2 status
frames are rejected by version gate).  Frames whose payload contains
loose elements decode against the ``group`` argument of
:func:`decode` when provided; without it, element fields fall back to
raw big-endian ints (the legacy modp reading).

Codec **version 4** adds the session-multiplexing runtime and takes
the group-modification layer onto the wire (kinds ``0x23``–``0x2F``):

* :class:`~repro.runtime.envelope.SessionEnvelope` (kind ``0x2F``) —
  a session id plus one complete embedded inner frame, letting one
  endpoint interleave any number of concurrent protocol sessions.
  Commitment compression applies to the *inner* payload, and
  digest-resolution (including :class:`UnresolvedDigest` buffering)
  passes straight through the envelope;
* the §6 agreement/addition messages (proposals, echo/ready votes,
  Node-Add requests, subshares, joined outputs), so proactive phase
  changes and member additions run over real sockets.

All pre-v4 kinds stay byte-identical; v4 kinds claiming an earlier
version are rejected.

Codec **version 5** adds the observability frames (kinds ``0x3C`` /
``0x3D``): ``OPS`` requests a node's metrics-registry snapshot and the
response carries it as one length-prefixed JSON document (the same
schema the ``/metrics.json`` HTTP endpoint serves), so new metric
families never require a codec change.  All pre-v5 kinds stay
byte-identical; OPS frames claiming an earlier version are rejected —
they did not exist.

Codec **version 6** adds the shard-router frames (kinds ``0x3E``–
``0x43``) of :mod:`repro.service.shard.api`: the keyed data path
(SHARD_SIGN / SHARD_STATUS — the single-committee requests plus the
``key_id`` that consistent hashing maps to a shard), the fleet
observability pair (FLEET_OPS carrying one aggregated JSON snapshot,
OPS-style), and the admin pair (SHARDCTL: a one-byte verb index into
``SHARDCTL_OPS`` + target shard id, answered with an opaque JSON
document).  Responses to the keyed path reuse the existing v2/v3
SIGN/STATUS response frames — a sharded signature is wire-identical to
a single-committee one.  All pre-v6 kinds stay byte-identical; shard
frames claiming an earlier version are rejected — they did not exist.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Any, Callable

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.groups import GROUP_REGISTRY, SchnorrGroup, group_by_name
from repro.crypto.hashing import commitment_digest
from repro.crypto.pedersen import PedersenCommitment
from repro.crypto.polynomials import Polynomial
from repro.crypto.schnorr import Signature
from repro.groupmod.messages import (
    JoinedOutput,
    ModProposal,
    NodeAddInput,
    NodeAddRequestMsg,
    ProposalDeliveredOutput,
    ProposalEchoMsg,
    ProposalMsg,
    ProposalReadyMsg,
    ProposeInput,
    SubshareMsg,
)
from repro.proactive.messages import ClockTickMsg, RenewedOutput, RenewInput
from repro.runtime import envelope as _envelope_module
from repro.runtime.envelope import SessionEnvelope
from repro.vss import messages as _vss_messages
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    ReadyWitness,
    ReconstructInput,
    ReconstructedOutput,
    RecoverInput,
    SendMsg,
    SessionId,
    SharedOutput,
    ShareInput,
    SharePointMsg,
)
from repro.service.protocol import (
    ERROR_NAMES,
    BeaconGetRequest,
    BeaconNextRequest,
    BeaconResponse,
    DecryptRequest,
    DecryptResponse,
    DprfEvalRequest,
    DprfResponse,
    ErrorResponse,
    OpsRequest,
    OpsResponse,
    SignRequest,
    SignResponse,
    StatusRequest,
    StatusResponse,
)
from repro.service.shard.api import (
    SHARDCTL_OPS,
    FleetOpsRequest,
    FleetOpsResponse,
    ShardCtlRequest,
    ShardCtlResponse,
    ShardSignRequest,
    ShardStatusRequest,
)
from repro.dkg.messages import (
    DIGEST_BYTES,
    INDEX_BYTES,
    TAU_BYTES,
    VIEW_BYTES,
    DkgCompletedOutput,
    DkgEchoMsg,
    DkgHelpMsg,
    DkgReadyMsg,
    DkgReconstructedOutput,
    DkgReconstructInput,
    DkgRecoverInput,
    DkgSendMsg,
    DkgSharePointMsg,
    DkgStartInput,
    LeadChMsg,
    LeadChWitness,
    MTypeProof,
    ReadyCert,
    RTypeProof,
    SetVote,
)

MAGIC = b"KG"
VERSION = 6  # v6: shard-router frames (see module doc)
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5, 6)
SERVICE_KIND_MIN = 0x30
ENVELOPE_KIND = 0x2F
# Kinds introduced by codec v4: the groupmod range plus the envelope.
V4_KINDS = frozenset(range(0x23, 0x30))
STATUS_RESPONSE_KIND = 0x3A  # layout changed in v3 (name precedes key)
OPS_REQUEST_KIND = 0x3C
OPS_RESPONSE_KIND = 0x3D
# Kinds introduced by codec v5: the observability pair.
V5_KINDS = frozenset({OPS_REQUEST_KIND, OPS_RESPONSE_KIND})
SHARD_SIGN_KIND = 0x3E
SHARD_STATUS_KIND = 0x3F
FLEET_OPS_REQUEST_KIND = 0x40
FLEET_OPS_RESPONSE_KIND = 0x41
SHARDCTL_REQUEST_KIND = 0x42
SHARDCTL_RESPONSE_KIND = 0x43
# Kinds introduced by codec v6: the shard-router range.
V6_KINDS = frozenset(range(SHARD_SIGN_KIND, SHARDCTL_RESPONSE_KIND + 1))
HEADER_BYTES = 4 + len(MAGIC) + 1 + 1  # length + magic + version + kind
# Fixed-size messages bake this framing cost into byte_size() directly.
assert HEADER_BYTES == _vss_messages.WIRE_FRAME_OVERHEAD
assert HEADER_BYTES == _envelope_module._FRAME_OVERHEAD

PHASE_BYTES = 4
REQUEST_ID_BYTES = 8  # client-chosen correlation id (service frames)
ROUND_BYTES = 8  # beacon round numbers


class WireError(ValueError):
    """Raised for truncated, garbled, oversized or unknown frames."""


class UnresolvedDigest(WireError):
    """A digest-compressed frame referenced a commitment the resolver
    does not (yet) know.  Receivers buffer such frames until the
    dealer's ``send`` supplies the matrix (Cachin-style compression)."""

    def __init__(self, digest: bytes):
        super().__init__("digest-compressed frame with no matching commitment")
        self.digest = digest


@lru_cache(maxsize=64)
def _group_from_name(name: str):
    """Resolve a group's self-reported name ("toy-3", "rfc5114-1024-160",
    "secp256k1") back to a group object of the right backend, or None
    for unregistered/custom names."""
    try:
        return group_by_name(name)
    except KeyError:
        pass
    base, sep, seed = name.rpartition("-")
    if sep and base in GROUP_REGISTRY and seed.isdigit():
        return GROUP_REGISTRY[base](int(seed))
    return None


# -- primitive writers ---------------------------------------------------------


def _uvarint(n: int) -> bytes:
    """Unsigned LEB128."""
    if n < 0:
        raise WireError("uvarint cannot encode negative values")
    out = bytearray()
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _fixed(n: int, width: int) -> bytes:
    try:
        return n.to_bytes(width, "big")
    except (OverflowError, ValueError) as exc:
        raise WireError(f"value {n} does not fit in {width} bytes") from exc


def _scalar_width(group, *values: int) -> int:
    """Field width for scalars: the group's if known, else minimal."""
    if group is not None:
        width = group.scalar_bytes
    else:
        width = 1
    for v in values:
        width = max(width, (v.bit_length() + 7) // 8 or 1)
    return width


class _Writer:
    def __init__(self, group=None):
        self.buf = bytearray()
        self.group = group  # width context for signatures/loose scalars
        # Set when a non-modp group shapes any field: such frames are
        # not decodable pre-v3 and must be stamped accordingly.
        self.needs_v3 = False

    def u8(self, n: int) -> None:
        self.buf += _fixed(n, 1)

    def uvarint(self, n: int) -> None:
        self.buf += _uvarint(n)

    def fixed(self, n: int, width: int) -> None:
        self.buf += _fixed(n, width)

    def index(self, n: int) -> None:
        self.fixed(n, INDEX_BYTES)

    def raw(self, data: bytes) -> None:
        self.buf += data

    def lbytes(self, data: bytes) -> None:
        self.uvarint(len(data))
        self.buf += data

    def session(self, sid: SessionId) -> None:
        self.raw(sid.as_bytes())  # 4-byte dealer + 4-byte tau

    def scalar(self, n: int) -> None:
        """A loose scalar: width prefix + fixed-width value."""
        width = _scalar_width(self.group, n)
        self.uvarint(width)
        self.fixed(n, width)

    def element(self, e) -> None:
        """A loose group element: length prefix + the owning backend's
        canonical bytes.  With no group context, plain ints write in
        their minimal big-endian form (byte-identical to the legacy
        ``scalar`` encoding of modp elements)."""
        if self.group is not None:
            if not isinstance(self.group, SchnorrGroup):
                self.needs_v3 = True
            self.lbytes(self.group.element_to_bytes(e))
        elif isinstance(e, int):
            self.lbytes(_fixed(e, (e.bit_length() + 7) // 8 or 1))
        else:
            raise WireError(
                f"cannot encode element {type(e).__name__} without a group"
            )

    def signature(self, sig: Signature | None) -> None:
        """Optional signature: uvarint width (0 = absent) + two scalars."""
        if sig is None:
            self.uvarint(0)
            return
        width = _scalar_width(self.group, sig.challenge, sig.response)
        self.uvarint(width)
        self.fixed(sig.challenge, width)
        self.fixed(sig.response, width)

    def group_params(self, group) -> None:
        """Named registry reference when possible, inline (p, q, g) for
        custom modp groups.  Non-modp backends are always registry-named
        (the curve is fixed), so the inline form stays modp-only."""
        if not isinstance(group, SchnorrGroup):
            self.needs_v3 = True
        if group.name != "custom" and _group_from_name(group.name) == group:
            self.u8(0)
            self.lbytes(group.name.encode())
            return
        if not isinstance(group, SchnorrGroup):
            raise WireError(
                f"group {group.name!r} is not registry-resolvable"
            )
        self.u8(1)
        self.lbytes(_fixed(group.p, (group.p.bit_length() + 7) // 8))
        self.lbytes(_fixed(group.q, (group.q.bit_length() + 7) // 8))
        self.lbytes(_fixed(group.g, (group.g.bit_length() + 7) // 8))

    def feldman_matrix(self, c: FeldmanCommitment) -> None:
        self.group_params(c.group)
        self.uvarint(c.degree + 1)
        to_bytes = c.group.element_to_bytes
        for row in c.matrix:
            for entry in row:
                self.raw(to_bytes(entry))

    def feldman_vector(self, v: FeldmanVector) -> None:
        self.group_params(v.group)
        self.uvarint(len(v.entries))
        to_bytes = v.group.element_to_bytes
        for entry in v.entries:
            self.raw(to_bytes(entry))

    def pedersen(self, c: PedersenCommitment) -> None:
        self.group_params(c.group)
        self.raw(c.group.element_to_bytes(c.h))
        self.uvarint(len(c.entries))
        to_bytes = c.group.element_to_bytes
        for entry in c.entries:
            self.raw(to_bytes(entry))

    def polynomial(self, poly: Polynomial) -> None:
        width = (poly.q.bit_length() + 7) // 8
        self.lbytes(_fixed(poly.q, width))
        self.uvarint(len(poly.coeffs))
        for coeff in poly.coeffs:
            self.fixed(coeff, width)


# -- primitive readers ---------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes, group=None):
        self.data = data
        self.pos = 0
        self.group = group

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise WireError("truncated frame")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireError("uvarint too long")

    def fixed(self, width: int) -> int:
        return int.from_bytes(self.take(width), "big")

    def index(self) -> int:
        return self.fixed(INDEX_BYTES)

    def lbytes(self) -> bytes:
        return self.take(self.uvarint())

    def session(self) -> SessionId:
        dealer = self.fixed(4)
        tau = self.fixed(4)
        return SessionId(dealer, tau)

    def scalar(self) -> int:
        return self.fixed(self.uvarint())

    def element(self):
        """A loose group element (see ``_Writer.element``): decoded by
        the group in context, or as a raw big-endian int without one."""
        raw = self.take(self.uvarint())
        if self.group is None:
            return int.from_bytes(raw, "big")
        try:
            return self.group.element_decode(bytes(raw))
        except ValueError as exc:
            raise WireError(f"garbled group element: {exc}") from exc

    def sized_element(self, group):
        """A fixed-width element (commitment entries): exactly
        ``group.element_bytes`` bytes of the backend's canonical form."""
        raw = self.take(group.element_bytes)
        try:
            return group.element_decode(bytes(raw))
        except ValueError as exc:
            raise WireError(f"garbled group element: {exc}") from exc

    def signature(self) -> Signature | None:
        width = self.uvarint()
        if width == 0:
            return None
        return Signature(self.fixed(width), self.fixed(width))

    def require_signature(self) -> Signature:
        sig = self.signature()
        if sig is None:
            raise WireError("missing required signature")
        return sig

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise WireError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )

    def group_params(self):
        tag = self.u8()
        if tag == 0:
            try:
                name = self.lbytes().decode()
            except UnicodeDecodeError as exc:
                raise WireError("garbled group name") from exc
            group = _group_from_name(name)
            if group is None:
                raise WireError(f"unknown group name {name!r}")
            return group
        if tag == 1:
            p = int.from_bytes(self.lbytes(), "big")
            q = int.from_bytes(self.lbytes(), "big")
            g = int.from_bytes(self.lbytes(), "big")
            return SchnorrGroup(p, q, g)
        raise WireError(f"bad group tag {tag}")

    def feldman_matrix(self) -> FeldmanCommitment:
        group = self.group_params()
        side = self.uvarint()
        if not 1 <= side <= 1024:
            raise WireError(f"implausible commitment side {side}")
        matrix = tuple(
            tuple(self.sized_element(group) for _ in range(side))
            for _ in range(side)
        )
        return FeldmanCommitment(matrix, group)

    def feldman_vector(self) -> FeldmanVector:
        group = self.group_params()
        count = self.uvarint()
        if not 1 <= count <= 1024:
            raise WireError(f"implausible vector length {count}")
        return FeldmanVector(
            tuple(self.sized_element(group) for _ in range(count)), group
        )

    def pedersen(self) -> PedersenCommitment:
        group = self.group_params()
        h = self.sized_element(group)
        count = self.uvarint()
        if not 1 <= count <= 1024:
            raise WireError(f"implausible vector length {count}")
        return PedersenCommitment(
            tuple(self.sized_element(group) for _ in range(count)), group, h
        )

    def polynomial(self) -> Polynomial:
        q_bytes = self.lbytes()
        q = int.from_bytes(q_bytes, "big")
        if q < 2:
            raise WireError("bad polynomial modulus")
        width = len(q_bytes)
        count = self.uvarint()
        if not 1 <= count <= 4096:
            raise WireError(f"implausible coefficient count {count}")
        return Polynomial(tuple(self.fixed(width) for _ in range(count)), q)


# -- commitment field: inline matrix or digest reference -----------------------

Resolver = Callable[[bytes], FeldmanCommitment | None]


def _write_commitment_field(
    w: _Writer, commitment: FeldmanCommitment, mode: str
) -> None:
    if mode == "digest":
        w.u8(1)
        w.raw(commitment_digest(commitment))
    else:
        w.u8(0)
        w.feldman_matrix(commitment)


def _read_commitment_field(r: _Reader, resolve: Resolver | None) -> FeldmanCommitment:
    tag = r.u8()
    if tag == 0:
        return r.feldman_matrix()
    if tag == 1:
        digest = bytes(r.take(DIGEST_BYTES))
        commitment = resolve(digest) if resolve is not None else None
        if commitment is None:
            raise UnresolvedDigest(digest)
        return commitment
    raise WireError(f"bad commitment tag {tag}")


# -- evidence structures (§4) --------------------------------------------------


def _write_witness(w: _Writer, witness: ReadyWitness) -> None:
    w.index(witness.signer)
    w.signature(witness.signature)


def _read_witness(r: _Reader) -> ReadyWitness:
    return ReadyWitness(r.index(), r.require_signature())


def _write_cert(w: _Writer, cert: ReadyCert) -> None:
    w.index(cert.dealer)
    if len(cert.digest) != DIGEST_BYTES:
        raise WireError("ReadyCert digest must be 32 bytes")
    w.raw(cert.digest)
    w.uvarint(len(cert.witnesses))
    for witness in cert.witnesses:
        _write_witness(w, witness)


def _read_cert(r: _Reader) -> ReadyCert:
    dealer = r.index()
    digest = bytes(r.take(DIGEST_BYTES))
    count = r.uvarint()
    witnesses = tuple(_read_witness(r) for _ in range(count))
    return ReadyCert(dealer, digest, witnesses)


_VOTE_KINDS = ("echo", "ready")


def _write_set_vote(w: _Writer, vote: SetVote) -> None:
    w.index(vote.voter)
    try:
        w.u8(_VOTE_KINDS.index(vote.vote_kind))
    except ValueError as exc:
        raise WireError(f"unknown vote kind {vote.vote_kind!r}") from exc
    w.signature(vote.signature)


def _read_set_vote(r: _Reader) -> SetVote:
    voter = r.index()
    kind = r.u8()
    if kind >= len(_VOTE_KINDS):
        raise WireError(f"bad vote kind byte {kind}")
    return SetVote(voter, _VOTE_KINDS[kind], r.require_signature())


def _write_q(w: _Writer, q: tuple[int, ...]) -> None:
    w.uvarint(len(q))
    for idx in q:
        w.index(idx)


def _read_q(r: _Reader) -> tuple[int, ...]:
    return tuple(r.index() for _ in range(r.uvarint()))


def _write_proof(w: _Writer, proof: RTypeProof | MTypeProof | None) -> None:
    if proof is None:
        w.u8(0)
    elif isinstance(proof, RTypeProof):
        w.u8(1)
        w.uvarint(len(proof.certs))
        for cert in proof.certs:
            _write_cert(w, cert)
    elif isinstance(proof, MTypeProof):
        w.u8(2)
        _write_q(w, proof.q)
        w.uvarint(len(proof.votes))
        for vote in proof.votes:
            _write_set_vote(w, vote)
    else:
        raise WireError(f"unknown proof type {proof!r}")


def _read_proof(r: _Reader) -> RTypeProof | MTypeProof | None:
    tag = r.u8()
    if tag == 0:
        return None
    if tag == 1:
        return RTypeProof(tuple(_read_cert(r) for _ in range(r.uvarint())))
    if tag == 2:
        q = _read_q(r)
        votes = tuple(_read_set_vote(r) for _ in range(r.uvarint()))
        return MTypeProof(q, votes)
    raise WireError(f"bad proof tag {tag}")


def _write_lead_ch_witness(w: _Writer, witness: LeadChWitness) -> None:
    w.index(witness.voter)
    w.fixed(witness.view, VIEW_BYTES)
    w.signature(witness.signature)


def _read_lead_ch_witness(r: _Reader) -> LeadChWitness:
    return LeadChWitness(r.index(), r.fixed(VIEW_BYTES), r.require_signature())


# -- per-message body codecs ---------------------------------------------------
#
# Each entry: kind id -> (type, encode_body, decode_body).  Encoders
# receive (_Writer, msg, commitment_mode); decoders (_Reader, resolve).


def _enc_vss_send(w: _Writer, m: SendMsg, mode: str) -> None:
    w.session(m.session)
    w.feldman_matrix(m.commitment)  # send always carries the matrix
    if m.poly is None:
        w.u8(0)
    else:
        w.u8(1)
        w.polynomial(m.poly)


def _dec_vss_send(r: _Reader, resolve: Resolver | None) -> SendMsg:
    session = r.session()
    commitment = r.feldman_matrix()
    poly = r.polynomial() if r.u8() else None
    return SendMsg(session, commitment, poly)


def _enc_vss_echo(w: _Writer, m: EchoMsg, mode: str) -> None:
    w.session(m.session)
    _write_commitment_field(w, m.commitment, mode)
    w.fixed(m.point, m.commitment.group.scalar_bytes)


def _dec_vss_echo(r: _Reader, resolve: Resolver | None) -> EchoMsg:
    session = r.session()
    commitment = _read_commitment_field(r, resolve)
    point = r.fixed(commitment.group.scalar_bytes)
    return EchoMsg(session, commitment, point)


def _enc_vss_ready(w: _Writer, m: ReadyMsg, mode: str) -> None:
    w.session(m.session)
    _write_commitment_field(w, m.commitment, mode)
    w.fixed(m.point, m.commitment.group.scalar_bytes)
    w.group = m.commitment.group
    w.signature(m.signature)


def _dec_vss_ready(r: _Reader, resolve: Resolver | None) -> ReadyMsg:
    session = r.session()
    commitment = _read_commitment_field(r, resolve)
    point = r.fixed(commitment.group.scalar_bytes)
    return ReadyMsg(session, commitment, point, r.signature())


def _enc_vss_help(w: _Writer, m: HelpMsg, mode: str) -> None:
    w.session(m.session)


def _dec_vss_help(r: _Reader, resolve: Resolver | None) -> HelpMsg:
    return HelpMsg(r.session())


def _enc_vss_rec_share(w: _Writer, m: SharePointMsg, mode: str) -> None:
    w.session(m.session)
    w.scalar(m.point)


def _dec_vss_rec_share(r: _Reader, resolve: Resolver | None) -> SharePointMsg:
    return SharePointMsg(r.session(), r.scalar())


def _enc_vss_in_share(w: _Writer, m: ShareInput, mode: str) -> None:
    w.session(m.session)
    w.scalar(m.secret)


def _dec_vss_in_share(r: _Reader, resolve: Resolver | None) -> ShareInput:
    return ShareInput(r.session(), r.scalar())


def _enc_vss_in_reconstruct(w: _Writer, m: ReconstructInput, mode: str) -> None:
    w.session(m.session)


def _dec_vss_in_reconstruct(r: _Reader, resolve: Resolver | None) -> ReconstructInput:
    return ReconstructInput(r.session())


def _enc_vss_in_recover(w: _Writer, m: RecoverInput, mode: str) -> None:
    w.session(m.session)


def _dec_vss_in_recover(r: _Reader, resolve: Resolver | None) -> RecoverInput:
    return RecoverInput(r.session())


def _enc_vss_out_shared(w: _Writer, m: SharedOutput, mode: str) -> None:
    w.session(m.session)
    w.feldman_matrix(m.commitment)
    w.group = m.commitment.group
    w.scalar(m.share)
    w.uvarint(len(m.ready_proof))
    for witness in m.ready_proof:
        _write_witness(w, witness)


def _dec_vss_out_shared(r: _Reader, resolve: Resolver | None) -> SharedOutput:
    session = r.session()
    commitment = r.feldman_matrix()
    share = r.scalar()
    proof = tuple(_read_witness(r) for _ in range(r.uvarint()))
    return SharedOutput(session, commitment, share, proof)


def _enc_vss_out_reconstructed(w: _Writer, m: ReconstructedOutput, mode: str) -> None:
    w.session(m.session)
    w.scalar(m.value)


def _dec_vss_out_reconstructed(
    r: _Reader, resolve: Resolver | None
) -> ReconstructedOutput:
    return ReconstructedOutput(r.session(), r.scalar())


def _enc_dkg_send(w: _Writer, m: DkgSendMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.fixed(m.view, VIEW_BYTES)
    _write_proof(w, m.proof)
    w.uvarint(len(m.election))
    for witness in m.election:
        _write_lead_ch_witness(w, witness)


def _dec_dkg_send(r: _Reader, resolve: Resolver | None) -> DkgSendMsg:
    tau = r.fixed(TAU_BYTES)
    view = r.fixed(VIEW_BYTES)
    proof = _read_proof(r)
    if proof is None:
        raise WireError("dkg send must carry a proof")
    election = tuple(_read_lead_ch_witness(r) for _ in range(r.uvarint()))
    return DkgSendMsg(tau, view, proof, election)


def _enc_dkg_vote(w: _Writer, m: DkgEchoMsg | DkgReadyMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.fixed(m.view, VIEW_BYTES)
    _write_q(w, m.q)
    w.signature(m.signature)


def _dec_dkg_echo(r: _Reader, resolve: Resolver | None) -> DkgEchoMsg:
    return DkgEchoMsg(
        r.fixed(TAU_BYTES), r.fixed(VIEW_BYTES), _read_q(r), r.require_signature()
    )


def _dec_dkg_ready(r: _Reader, resolve: Resolver | None) -> DkgReadyMsg:
    return DkgReadyMsg(
        r.fixed(TAU_BYTES), r.fixed(VIEW_BYTES), _read_q(r), r.require_signature()
    )


def _enc_dkg_lead_ch(w: _Writer, m: LeadChMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.fixed(m.view, VIEW_BYTES)
    _write_proof(w, m.proof)
    w.signature(m.signature)


def _dec_dkg_lead_ch(r: _Reader, resolve: Resolver | None) -> LeadChMsg:
    tau = r.fixed(TAU_BYTES)
    view = r.fixed(VIEW_BYTES)
    proof = _read_proof(r)
    return LeadChMsg(tau, view, proof, r.require_signature())


def _enc_dkg_rec_share(w: _Writer, m: DkgSharePointMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.scalar(m.point)


def _dec_dkg_rec_share(r: _Reader, resolve: Resolver | None) -> DkgSharePointMsg:
    return DkgSharePointMsg(r.fixed(TAU_BYTES), r.scalar())


def _enc_dkg_help(w: _Writer, m: DkgHelpMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)


def _dec_dkg_help(r: _Reader, resolve: Resolver | None) -> DkgHelpMsg:
    return DkgHelpMsg(r.fixed(TAU_BYTES))


def _enc_dkg_in_start(w: _Writer, m: DkgStartInput, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)


def _dec_dkg_in_start(r: _Reader, resolve: Resolver | None) -> DkgStartInput:
    return DkgStartInput(r.fixed(TAU_BYTES))


def _enc_dkg_in_recover(w: _Writer, m: DkgRecoverInput, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)


def _dec_dkg_in_recover(r: _Reader, resolve: Resolver | None) -> DkgRecoverInput:
    return DkgRecoverInput(r.fixed(TAU_BYTES))


def _enc_dkg_in_reconstruct(w: _Writer, m: DkgReconstructInput, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)


def _dec_dkg_in_reconstruct(
    r: _Reader, resolve: Resolver | None
) -> DkgReconstructInput:
    return DkgReconstructInput(r.fixed(TAU_BYTES))


def _enc_dkg_out_reconstructed(
    w: _Writer, m: DkgReconstructedOutput, mode: str
) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.scalar(m.value)


def _dec_dkg_out_reconstructed(
    r: _Reader, resolve: Resolver | None
) -> DkgReconstructedOutput:
    return DkgReconstructedOutput(r.fixed(TAU_BYTES), r.scalar())


def _enc_dkg_out_completed(w: _Writer, m: DkgCompletedOutput, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.fixed(m.view, VIEW_BYTES)
    _write_q(w, m.q_set)
    if isinstance(m.commitment, FeldmanCommitment):
        w.u8(0)
        w.feldman_matrix(m.commitment)
        w.group = m.commitment.group
    elif isinstance(m.commitment, FeldmanVector):
        w.u8(1)
        w.feldman_vector(m.commitment)
        w.group = m.commitment.group
    elif isinstance(m.commitment, PedersenCommitment):
        # Pedersen-hardened variants (Gennaro et al. baseline, E9
        # ablation) publish an unconditionally hiding commitment.
        w.u8(2)
        w.pedersen(m.commitment)
        w.group = m.commitment.group
    else:
        raise WireError(f"unencodable commitment {type(m.commitment).__name__}")
    w.scalar(m.share)
    w.element(m.public_key)  # w.group was set by the commitment branch


def _dec_dkg_out_completed(r: _Reader, resolve: Resolver | None) -> DkgCompletedOutput:
    tau = r.fixed(TAU_BYTES)
    view = r.fixed(VIEW_BYTES)
    q_set = _read_q(r)
    shape = r.u8()
    if shape == 0:
        commitment: Any = r.feldman_matrix()
    elif shape == 1:
        commitment = r.feldman_vector()
    elif shape == 2:
        commitment = r.pedersen()
    else:
        raise WireError(f"bad commitment shape {shape}")
    share = r.scalar()
    r.group = commitment.group
    public_key = r.element()
    return DkgCompletedOutput(tau, view, q_set, commitment, share, public_key)


def _enc_proactive_tick(w: _Writer, m: ClockTickMsg, mode: str) -> None:
    w.fixed(m.phase, PHASE_BYTES)


def _dec_proactive_tick(r: _Reader, resolve: Resolver | None) -> ClockTickMsg:
    return ClockTickMsg(r.fixed(PHASE_BYTES))


def _enc_proactive_in_renew(w: _Writer, m: RenewInput, mode: str) -> None:
    w.fixed(m.phase, PHASE_BYTES)


def _dec_proactive_in_renew(r: _Reader, resolve: Resolver | None) -> RenewInput:
    return RenewInput(r.fixed(PHASE_BYTES))


def _enc_proactive_out_renewed(w: _Writer, m: RenewedOutput, mode: str) -> None:
    w.fixed(m.phase, PHASE_BYTES)
    w.feldman_vector(m.commitment)
    w.group = m.commitment.group
    w.scalar(m.share)
    _write_q(w, m.q_set)


def _dec_proactive_out_renewed(r: _Reader, resolve: Resolver | None) -> RenewedOutput:
    phase = r.fixed(PHASE_BYTES)
    commitment = r.feldman_vector()
    share = r.scalar()
    q_set = _read_q(r)
    return RenewedOutput(phase, commitment, share, q_set)


# -- group modification frames (codec v4, §6) ----------------------------------


_PROPOSAL_ACTIONS = ("add", "remove")
_DELTA_BIAS = 128  # t/f deltas are signed small ints; bias into a u8


def _write_proposal(w: _Writer, proposal: ModProposal) -> None:
    try:
        w.u8(_PROPOSAL_ACTIONS.index(proposal.action))
    except ValueError as exc:
        raise WireError(f"unknown action {proposal.action!r}") from exc
    w.index(proposal.node)
    for delta in (proposal.t_delta, proposal.f_delta):
        if not -_DELTA_BIAS <= delta < _DELTA_BIAS:
            raise WireError(f"delta {delta} out of wire range")
        w.u8(delta + _DELTA_BIAS)


def _read_proposal(r: _Reader) -> ModProposal:
    action = r.u8()
    if action >= len(_PROPOSAL_ACTIONS):
        raise WireError(f"bad action byte {action}")
    node = r.index()
    t_delta = r.u8() - _DELTA_BIAS
    f_delta = r.u8() - _DELTA_BIAS
    return ModProposal(_PROPOSAL_ACTIONS[action], node, t_delta, f_delta)


def _make_proposal_codec(typ: type) -> tuple[type, Callable, Callable]:
    def enc(w: _Writer, m: Any, mode: str) -> None:
        _write_proposal(w, m.proposal)

    def dec(r: _Reader, resolve: Resolver | None) -> Any:
        return typ(_read_proposal(r))

    return (typ, enc, dec)


def _enc_gm_add_request(w: _Writer, m: NodeAddRequestMsg, mode: str) -> None:
    w.index(m.new_node)
    w.fixed(m.tau, TAU_BYTES)


def _dec_gm_add_request(r: _Reader, resolve: Resolver | None) -> NodeAddRequestMsg:
    return NodeAddRequestMsg(r.index(), r.fixed(TAU_BYTES))


def _enc_gm_add_input(w: _Writer, m: NodeAddInput, mode: str) -> None:
    w.index(m.new_node)
    w.fixed(m.tau, TAU_BYTES)


def _dec_gm_add_input(r: _Reader, resolve: Resolver | None) -> NodeAddInput:
    return NodeAddInput(r.index(), r.fixed(TAU_BYTES))


def _enc_gm_subshare(w: _Writer, m: SubshareMsg, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.feldman_vector(m.vector)
    w.group = m.vector.group
    w.scalar(m.subshare)


def _dec_gm_subshare(r: _Reader, resolve: Resolver | None) -> SubshareMsg:
    tau = r.fixed(TAU_BYTES)
    vector = r.feldman_vector()
    return SubshareMsg(tau, vector, r.scalar())


def _enc_gm_joined(w: _Writer, m: JoinedOutput, mode: str) -> None:
    w.fixed(m.tau, TAU_BYTES)
    w.feldman_vector(m.vector)
    w.group = m.vector.group
    w.scalar(m.share)


def _dec_gm_joined(r: _Reader, resolve: Resolver | None) -> JoinedOutput:
    tau = r.fixed(TAU_BYTES)
    vector = r.feldman_vector()
    return JoinedOutput(tau, r.scalar(), vector)


# -- the session envelope (codec v4): multiplexed traffic -----------------------


def _enc_envelope(w: _Writer, m: SessionEnvelope, mode: str) -> None:
    raw = m.session.encode()
    if len(raw) > 255:
        raise WireError("session id too long")
    w.lbytes(raw)
    # The inner payload travels as one complete embedded frame, with
    # the commitment mode the deployment codec chose for *it*.
    w.raw(encode(m.payload, group=w.group, commitments=mode))


def _dec_envelope(r: _Reader, resolve: Resolver | None) -> SessionEnvelope:
    try:
        session = r.lbytes().decode()
    except UnicodeDecodeError as exc:
        raise WireError("garbled session id") from exc
    inner = bytes(r.take(len(r.data) - r.pos))
    # UnresolvedDigest propagates: the transport buffers the *outer*
    # frame until the referenced commitment arrives, then re-decodes.
    return SessionEnvelope(session, decode(inner, resolve=resolve, group=r.group))


# -- service frames (codec v2): client <-> gateway -----------------------------


def _enc_svc_sign_req(w: _Writer, m: SignRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.message)


def _dec_svc_sign_req(r: _Reader, resolve: Resolver | None) -> SignRequest:
    return SignRequest(r.fixed(REQUEST_ID_BYTES), r.lbytes())


def _enc_svc_sign_resp(w: _Writer, m: SignResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.scalar(m.challenge)
    w.scalar(m.response)
    w.u8(1 if m.presig_used else 0)


def _dec_svc_sign_resp(r: _Reader, resolve: Resolver | None) -> SignResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    challenge = r.scalar()
    response = r.scalar()
    flag = r.u8()
    if flag > 1:
        raise WireError(f"bad presig flag {flag}")
    return SignResponse(request_id, challenge, response, bool(flag))


def _enc_svc_beacon_next(w: _Writer, m: BeaconNextRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)


def _dec_svc_beacon_next(r: _Reader, resolve: Resolver | None) -> BeaconNextRequest:
    return BeaconNextRequest(r.fixed(REQUEST_ID_BYTES))


def _enc_svc_beacon_get(w: _Writer, m: BeaconGetRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.fixed(m.round_number, ROUND_BYTES)


def _dec_svc_beacon_get(r: _Reader, resolve: Resolver | None) -> BeaconGetRequest:
    return BeaconGetRequest(r.fixed(REQUEST_ID_BYTES), r.fixed(ROUND_BYTES))


def _enc_svc_beacon_resp(w: _Writer, m: BeaconResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.fixed(m.round_number, ROUND_BYTES)
    w.lbytes(m.output)
    w.element(m.value)


def _dec_svc_beacon_resp(r: _Reader, resolve: Resolver | None) -> BeaconResponse:
    return BeaconResponse(
        r.fixed(REQUEST_ID_BYTES), r.fixed(ROUND_BYTES), r.lbytes(), r.element()
    )


def _enc_svc_dprf_req(w: _Writer, m: DprfEvalRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.tag)


def _dec_svc_dprf_req(r: _Reader, resolve: Resolver | None) -> DprfEvalRequest:
    return DprfEvalRequest(r.fixed(REQUEST_ID_BYTES), r.lbytes())


def _enc_svc_dprf_resp(w: _Writer, m: DprfResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.output)


def _dec_svc_dprf_resp(r: _Reader, resolve: Resolver | None) -> DprfResponse:
    return DprfResponse(r.fixed(REQUEST_ID_BYTES), r.lbytes())


def _enc_svc_decrypt_req(w: _Writer, m: DecryptRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.element(m.c1)
    w.lbytes(m.pad)


def _dec_svc_decrypt_req(r: _Reader, resolve: Resolver | None) -> DecryptRequest:
    return DecryptRequest(r.fixed(REQUEST_ID_BYTES), r.element(), r.lbytes())


def _enc_svc_decrypt_resp(w: _Writer, m: DecryptResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.plaintext)


def _dec_svc_decrypt_resp(r: _Reader, resolve: Resolver | None) -> DecryptResponse:
    return DecryptResponse(r.fixed(REQUEST_ID_BYTES), r.lbytes())


def _enc_svc_status_req(w: _Writer, m: StatusRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)


def _dec_svc_status_req(r: _Reader, resolve: Resolver | None) -> StatusRequest:
    return StatusRequest(r.fixed(REQUEST_ID_BYTES))


def _enc_svc_status_resp(w: _Writer, m: StatusResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.index(m.n)
    w.index(m.t)
    w.index(m.alive)
    w.uvarint(m.pool_ready)
    w.uvarint(m.pool_target)
    w.uvarint(m.served)
    w.uvarint(m.failed)
    w.uvarint(m.beacon_height)
    # v3: the name travels first so the key decodes with no context.
    w.lbytes(m.group_name.encode())
    if w.group is None:
        w.group = _group_from_name(m.group_name)
    w.element(m.public_key)


def _dec_svc_status_resp(r: _Reader, resolve: Resolver | None) -> StatusResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    n = r.index()
    t = r.index()
    alive = r.index()
    pool_ready = r.uvarint()
    pool_target = r.uvarint()
    served = r.uvarint()
    failed = r.uvarint()
    beacon_height = r.uvarint()
    try:
        group_name = r.lbytes().decode()
    except UnicodeDecodeError as exc:
        raise WireError("garbled group name") from exc
    if r.group is None:
        r.group = _group_from_name(group_name)
    public_key = r.element()
    return StatusResponse(
        request_id,
        n,
        t,
        alive,
        pool_ready,
        pool_target,
        served,
        failed,
        beacon_height,
        public_key,
        group_name,
    )


def _enc_svc_error(w: _Writer, m: ErrorResponse, mode: str) -> None:
    if m.code not in ERROR_NAMES:
        raise WireError(f"unknown service error code {m.code}")
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.u8(m.code)
    w.lbytes(m.detail.encode())


def _dec_svc_error(r: _Reader, resolve: Resolver | None) -> ErrorResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    code = r.u8()
    if code not in ERROR_NAMES:
        raise WireError(f"unknown service error code {code}")
    try:
        detail = r.lbytes().decode()
    except UnicodeDecodeError as exc:
        raise WireError("garbled error detail") from exc
    return ErrorResponse(request_id, code, detail)


def _enc_svc_ops_req(w: _Writer, m: OpsRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)


def _dec_svc_ops_req(r: _Reader, resolve: Resolver | None) -> OpsRequest:
    return OpsRequest(r.fixed(REQUEST_ID_BYTES))


def _enc_svc_ops_resp(w: _Writer, m: OpsResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.snapshot)


def _dec_svc_ops_resp(r: _Reader, resolve: Resolver | None) -> OpsResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    return OpsResponse(request_id, r.lbytes())


# -- shard-router frames (codec v6) --------------------------------------------


def _enc_shard_sign(w: _Writer, m: ShardSignRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.key_id)
    w.lbytes(m.message)


def _dec_shard_sign(r: _Reader, resolve: Resolver | None) -> ShardSignRequest:
    request_id = r.fixed(REQUEST_ID_BYTES)
    key_id = r.lbytes()
    return ShardSignRequest(request_id, key_id, r.lbytes())


def _enc_shard_status(w: _Writer, m: ShardStatusRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.key_id)


def _dec_shard_status(r: _Reader, resolve: Resolver | None) -> ShardStatusRequest:
    request_id = r.fixed(REQUEST_ID_BYTES)
    return ShardStatusRequest(request_id, r.lbytes())


def _enc_fleet_ops_req(w: _Writer, m: FleetOpsRequest, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)


def _dec_fleet_ops_req(r: _Reader, resolve: Resolver | None) -> FleetOpsRequest:
    return FleetOpsRequest(r.fixed(REQUEST_ID_BYTES))


def _enc_fleet_ops_resp(w: _Writer, m: FleetOpsResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.snapshot)


def _dec_fleet_ops_resp(r: _Reader, resolve: Resolver | None) -> FleetOpsResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    return FleetOpsResponse(request_id, r.lbytes())


def _enc_shardctl_req(w: _Writer, m: ShardCtlRequest, mode: str) -> None:
    if m.op not in SHARDCTL_OPS:
        raise WireError(f"unknown shardctl op {m.op!r}")
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.u8(SHARDCTL_OPS.index(m.op))
    w.lbytes(m.shard_id.encode())


def _dec_shardctl_req(r: _Reader, resolve: Resolver | None) -> ShardCtlRequest:
    request_id = r.fixed(REQUEST_ID_BYTES)
    op_index = r.u8()
    if op_index >= len(SHARDCTL_OPS):
        raise WireError(f"unknown shardctl op index {op_index}")
    try:
        shard_id = r.lbytes().decode()
    except UnicodeDecodeError as exc:
        raise WireError("garbled shard id") from exc
    return ShardCtlRequest(request_id, SHARDCTL_OPS[op_index], shard_id)


def _enc_shardctl_resp(w: _Writer, m: ShardCtlResponse, mode: str) -> None:
    w.fixed(m.request_id, REQUEST_ID_BYTES)
    w.lbytes(m.document)


def _dec_shardctl_resp(r: _Reader, resolve: Resolver | None) -> ShardCtlResponse:
    request_id = r.fixed(REQUEST_ID_BYTES)
    return ShardCtlResponse(request_id, r.lbytes())


_CODECS: dict[int, tuple[type, Callable, Callable]] = {
    0x01: (SendMsg, _enc_vss_send, _dec_vss_send),
    0x02: (EchoMsg, _enc_vss_echo, _dec_vss_echo),
    0x03: (ReadyMsg, _enc_vss_ready, _dec_vss_ready),
    0x04: (HelpMsg, _enc_vss_help, _dec_vss_help),
    0x05: (SharePointMsg, _enc_vss_rec_share, _dec_vss_rec_share),
    0x06: (ShareInput, _enc_vss_in_share, _dec_vss_in_share),
    0x07: (ReconstructInput, _enc_vss_in_reconstruct, _dec_vss_in_reconstruct),
    0x08: (RecoverInput, _enc_vss_in_recover, _dec_vss_in_recover),
    0x09: (SharedOutput, _enc_vss_out_shared, _dec_vss_out_shared),
    0x0A: (ReconstructedOutput, _enc_vss_out_reconstructed, _dec_vss_out_reconstructed),
    0x10: (DkgSendMsg, _enc_dkg_send, _dec_dkg_send),
    0x11: (DkgEchoMsg, _enc_dkg_vote, _dec_dkg_echo),
    0x12: (DkgReadyMsg, _enc_dkg_vote, _dec_dkg_ready),
    0x13: (LeadChMsg, _enc_dkg_lead_ch, _dec_dkg_lead_ch),
    0x14: (DkgSharePointMsg, _enc_dkg_rec_share, _dec_dkg_rec_share),
    0x15: (DkgHelpMsg, _enc_dkg_help, _dec_dkg_help),
    0x16: (DkgStartInput, _enc_dkg_in_start, _dec_dkg_in_start),
    0x17: (DkgRecoverInput, _enc_dkg_in_recover, _dec_dkg_in_recover),
    0x18: (DkgReconstructInput, _enc_dkg_in_reconstruct, _dec_dkg_in_reconstruct),
    0x19: (DkgReconstructedOutput, _enc_dkg_out_reconstructed, _dec_dkg_out_reconstructed),
    0x1A: (DkgCompletedOutput, _enc_dkg_out_completed, _dec_dkg_out_completed),
    0x20: (ClockTickMsg, _enc_proactive_tick, _dec_proactive_tick),
    0x21: (RenewInput, _enc_proactive_in_renew, _dec_proactive_in_renew),
    0x22: (RenewedOutput, _enc_proactive_out_renewed, _dec_proactive_out_renewed),
    # group modification (codec v4)
    0x23: _make_proposal_codec(ProposalMsg),
    0x24: _make_proposal_codec(ProposalEchoMsg),
    0x25: _make_proposal_codec(ProposalReadyMsg),
    0x26: _make_proposal_codec(ProposeInput),
    0x27: _make_proposal_codec(ProposalDeliveredOutput),
    0x28: (NodeAddRequestMsg, _enc_gm_add_request, _dec_gm_add_request),
    0x29: (NodeAddInput, _enc_gm_add_input, _dec_gm_add_input),
    0x2A: (SubshareMsg, _enc_gm_subshare, _dec_gm_subshare),
    0x2B: (JoinedOutput, _enc_gm_joined, _dec_gm_joined),
    # session multiplexing (codec v4)
    ENVELOPE_KIND: (SessionEnvelope, _enc_envelope, _dec_envelope),
    # service frames: v2 only (SERVICE_KIND_MIN marks the boundary)
    0x30: (SignRequest, _enc_svc_sign_req, _dec_svc_sign_req),
    0x31: (SignResponse, _enc_svc_sign_resp, _dec_svc_sign_resp),
    0x32: (BeaconNextRequest, _enc_svc_beacon_next, _dec_svc_beacon_next),
    0x33: (BeaconGetRequest, _enc_svc_beacon_get, _dec_svc_beacon_get),
    0x34: (BeaconResponse, _enc_svc_beacon_resp, _dec_svc_beacon_resp),
    0x35: (DprfEvalRequest, _enc_svc_dprf_req, _dec_svc_dprf_req),
    0x36: (DprfResponse, _enc_svc_dprf_resp, _dec_svc_dprf_resp),
    0x37: (DecryptRequest, _enc_svc_decrypt_req, _dec_svc_decrypt_req),
    0x38: (DecryptResponse, _enc_svc_decrypt_resp, _dec_svc_decrypt_resp),
    0x39: (StatusRequest, _enc_svc_status_req, _dec_svc_status_req),
    0x3A: (StatusResponse, _enc_svc_status_resp, _dec_svc_status_resp),
    0x3B: (ErrorResponse, _enc_svc_error, _dec_svc_error),
    # observability frames (codec v5)
    OPS_REQUEST_KIND: (OpsRequest, _enc_svc_ops_req, _dec_svc_ops_req),
    OPS_RESPONSE_KIND: (OpsResponse, _enc_svc_ops_resp, _dec_svc_ops_resp),
    # shard-router frames (codec v6)
    SHARD_SIGN_KIND: (ShardSignRequest, _enc_shard_sign, _dec_shard_sign),
    SHARD_STATUS_KIND: (ShardStatusRequest, _enc_shard_status, _dec_shard_status),
    FLEET_OPS_REQUEST_KIND: (FleetOpsRequest, _enc_fleet_ops_req, _dec_fleet_ops_req),
    FLEET_OPS_RESPONSE_KIND: (
        FleetOpsResponse,
        _enc_fleet_ops_resp,
        _dec_fleet_ops_resp,
    ),
    SHARDCTL_REQUEST_KIND: (ShardCtlRequest, _enc_shardctl_req, _dec_shardctl_req),
    SHARDCTL_RESPONSE_KIND: (
        ShardCtlResponse,
        _enc_shardctl_resp,
        _dec_shardctl_resp,
    ),
}

_KIND_BY_TYPE: dict[type, int] = {typ: kind for kind, (typ, _, _) in _CODECS.items()}

MAX_FRAME_BYTES = 1 << 24  # 16 MiB — far above any honest frame


# -- public API ----------------------------------------------------------------


def encode(
    message: Any,
    *,
    group=None,
    commitments: str = "inline",
) -> bytes:
    """Serialize ``message`` into one length-prefixed frame.

    ``group`` pins scalar field widths (signatures, loose scalars) so
    frame sizes are value-independent; without it minimal widths are
    used.  ``commitments="digest"`` emits the Cachin-style compressed
    form for ``echo``/``ready`` frames (decoding then needs ``resolve``).
    """
    if commitments not in ("inline", "digest"):
        raise WireError(f"unknown commitment mode {commitments!r}")
    kind = _KIND_BY_TYPE.get(type(message))
    if kind is None:
        raise WireError(f"no wire codec for {type(message).__name__}")
    w = _Writer(group)
    _, enc, _ = _CODECS[kind]
    enc(w, message, commitments)
    # Stamp the *minimum* version able to decode the frame: modp
    # protocol kinds are byte-identical to v1 (rolling upgrades keep
    # working) and unchanged service kinds to v2; STATUS changed layout
    # in v3, and any frame shaped by a non-modp group (EC commitments,
    # compressed-point elements) is only decodable by v3 peers.
    # Envelope and groupmod kinds did not exist before v4, the OPS
    # observability pair not before v5, the shard-router range not
    # before v6.
    if kind in V6_KINDS:
        version = 6
    elif kind in V5_KINDS:
        version = 5
    elif kind in V4_KINDS:
        version = 4
    elif kind == STATUS_RESPONSE_KIND or w.needs_v3:
        version = 3
    elif kind >= SERVICE_KIND_MIN:
        version = 2
    else:
        version = 1
    frame = MAGIC + bytes([version, kind]) + bytes(w.buf)
    return len(frame).to_bytes(4, "big") + frame


def decode(
    data: bytes, *, resolve: Resolver | None = None, group=None
) -> Any:
    """Parse exactly one frame produced by :func:`encode`.

    ``group`` supplies the element-decoding context for frames whose
    payload carries loose elements with no embedded group reference
    (service frames); without it such fields fall back to raw ints —
    correct for modp, opaque for EC backends.  The decoded message's
    ``size`` field (when the type has one) is stamped with the frame
    length, so ``byte_size()`` reports the true wire footprint on the
    receive path too.  Raises :class:`WireError` on truncation,
    garbage, unknown kinds or trailing bytes.
    """
    if len(data) < HEADER_BYTES:
        raise WireError("frame shorter than header")
    length = int.from_bytes(data[:4], "big")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds cap")
    if length != len(data) - 4:
        raise WireError("frame length mismatch")
    if data[4:6] != MAGIC:
        raise WireError("bad magic")
    if data[6] not in SUPPORTED_VERSIONS:
        raise WireError(f"unsupported wire version {data[6]}")
    kind = data[7]
    if kind >= SERVICE_KIND_MIN and data[6] < 2:
        raise WireError(
            f"service frame kind 0x{kind:02x} requires codec version >= 2"
        )
    if kind == STATUS_RESPONSE_KIND and data[6] < 3:
        raise WireError(
            "status frame predates codec version 3 (layout changed)"
        )
    if kind in V4_KINDS and data[6] < 4:
        raise WireError(
            f"frame kind 0x{kind:02x} requires codec version >= 4"
        )
    if kind in V5_KINDS and data[6] < 5:
        raise WireError(
            f"frame kind 0x{kind:02x} requires codec version >= 5"
        )
    if kind in V6_KINDS and data[6] < 6:
        raise WireError(
            f"frame kind 0x{kind:02x} requires codec version >= 6"
        )
    entry = _CODECS.get(kind)
    if entry is None:
        raise WireError(f"unknown frame kind 0x{kind:02x}")
    _, _, dec = entry
    reader = _Reader(data[HEADER_BYTES:], group)
    message = dec(reader, resolve)
    reader.expect_end()
    if "size" in getattr(type(message), "__dataclass_fields__", {}):
        message = dataclasses.replace(message, size=len(data))
    return message


def commitment_mode(codec: Any, message: Any) -> str:
    """Which commitment form ``message`` travels as under ``codec``.

    The single source of truth shared by size stamping and the real
    transport's encoder: under the hashed codec, ``echo``/``ready``
    frames carry the 32-byte digest; everything else is inline.
    Session envelopes compress by what they *carry*.
    """
    if isinstance(message, SessionEnvelope):
        return commitment_mode(codec, message.payload)
    if getattr(codec, "name", None) == "hashed-matrix" and getattr(
        message, "kind", ""
    ) in ("vss.echo", "vss.ready"):
        return "digest"
    return "inline"


def encoded_size(message: Any, codec: Any = None, group=None) -> int:
    """True serialized length of ``message`` under the deployment codec.

    With a :class:`~repro.crypto.hashing.HashedMatrixCodec`, ``echo``/
    ``ready`` payloads are priced in their digest-compressed form — the
    paper's O(kappa n^3) accounting; everything else (and the default
    full-matrix codec) is priced as the self-contained inline frame.
    """
    return len(
        encode(message, group=group, commitments=commitment_mode(codec, message))
    )


def stamp(message: Any, codec: Any = None, group=None) -> Any:
    """Return ``message`` with ``size`` set to its true wire length."""
    return dataclasses.replace(
        message, size=encoded_size(message, codec, group)
    )
