"""Offline analysis of flight-recorder captures (``repro trace``).

A capture is a totally-ordered list of spans — one per machine
transition, each naming its node, session, event, backend clock and
step duration.  From that alone this module derives the reports an
operator reaches for first when a run looks slow or wrong:

* **phase latencies** — per session, when the first ``*.send`` /
  ``*.echo`` / ``*.ready`` message was consumed and when the first
  ``Output`` fired, as share→echo→ready→output deltas, annotated with
  the deployment's Fig. 1 quorum thresholds (``echo = ceil((n+t+1)/2)``,
  ``ready = t+1``, ``output = n-t-f``) so a stalled quorum is visible
  next to the size it was waiting for;
* **flow matrix** — node × message-kind receive counts, the quickest
  way to spot a node that went quiet or a kind that flooded;
* **critical path** — walks the send→receive span graph backwards from
  the last output: a receive span's predecessor is the latest earlier
  span at the *sender* that emitted that message kind in the same
  session (falling back to the node's own previous span for local
  causality), which surfaces the actual dependency chain that gated
  completion;
* **step durations** — p50/p90/p99 of the recorded per-step
  ``perf_counter`` durations, grouped by event label (the offline twin
  of the live ``repro_runtime_step_seconds`` histogram).

Analysis needs only span labels; payload-mode captures sharpen the
critical path (the recorded sender pins cross-node edges exactly).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.latency import percentile
from repro.obs.replay import Capture, ReplayError, load_capture

@dataclass
class SessionPhases:
    """First-arrival clock readings of one session's protocol phases."""

    session: str
    first_send: float | None = None
    first_echo: float | None = None
    first_ready: float | None = None
    first_output: float | None = None
    outputs: int = 0
    spans: int = 0

    def latencies(self) -> dict[str, float | None]:
        def delta(a: float | None, b: float | None) -> float | None:
            if a is None or b is None:
                return None
            return b - a

        return {
            "send_to_echo": delta(self.first_send, self.first_echo),
            "echo_to_ready": delta(self.first_echo, self.first_ready),
            "ready_to_output": delta(self.first_ready, self.first_output),
            "send_to_output": delta(self.first_send, self.first_output),
        }


@dataclass
class PathStep:
    """One hop of the critical path (file order index for drill-down)."""

    index: int
    node: int
    session: str | None
    event: str
    t: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "node": self.node,
            "session": self.session,
            "event": self.event,
            "t": self.t,
        }


@dataclass
class TraceReport:
    """Everything ``repro trace`` prints, JSON-ready."""

    meta: dict[str, Any]
    spans: int
    phases: list[SessionPhases] = field(default_factory=list)
    thresholds: dict[str, int] | None = None
    flow: dict[int, dict[str, int]] = field(default_factory=dict)
    critical_path: list[PathStep] = field(default_factory=list)
    step_durations: dict[str, dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "cmd": self.meta.get("cmd"),
            "transport": self.meta.get("transport"),
            "group": self.meta.get("group"),
            "seed": self.meta.get("seed"),
            "spans": self.spans,
            "thresholds": self.thresholds,
            "phases": [
                {
                    "session": p.session,
                    "spans": p.spans,
                    "outputs": p.outputs,
                    "first": {
                        "send": p.first_send,
                        "echo": p.first_echo,
                        "ready": p.first_ready,
                        "output": p.first_output,
                    },
                    "latency": p.latencies(),
                }
                for p in self.phases
            ],
            "flow": {
                str(node): dict(sorted(kinds.items()))
                for node, kinds in sorted(self.flow.items())
            },
            "critical_path": [step.as_dict() for step in self.critical_path],
            "step_durations": self.step_durations,
        }


def _message_kind(event: str) -> str | None:
    if event.startswith("message:"):
        return event.split(":", 1)[1]
    return None


def _thresholds(meta: dict[str, Any]) -> dict[str, int] | None:
    params = meta.get("config")
    if not params:
        return None
    try:
        from repro import quorum

        return quorum.thresholds(params["n"], params["t"], params["f"])
    except Exception:
        return None


def _phase_breakdown(spans: list[dict[str, Any]]) -> list[SessionPhases]:
    by_session: dict[str, SessionPhases] = {}
    for span in spans:
        session = span.get("session") or "<default>"
        phases = by_session.setdefault(session, SessionPhases(session))
        phases.spans += 1
        t = span.get("t", 0.0)
        kind = _message_kind(span.get("event", ""))
        if kind is not None:
            # Every protocol family (vss.*, dkg.*, groupmod.*) names its
            # round messages with these suffixes — match on suffix
            # rather than pinning one family.
            if kind.endswith(".send") and phases.first_send is None:
                phases.first_send = t
            elif kind.endswith(".echo") and phases.first_echo is None:
                phases.first_echo = t
            elif kind.endswith(".ready") and phases.first_ready is None:
                phases.first_ready = t
        for effect in span.get("effects", []):
            if effect.startswith("output:"):
                phases.outputs += 1
                if phases.first_output is None:
                    phases.first_output = t
    return sorted(by_session.values(), key=lambda p: p.session)


def _flow_matrix(spans: list[dict[str, Any]]) -> dict[int, dict[str, int]]:
    flow: dict[int, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for span in spans:
        kind = _message_kind(span.get("event", ""))
        if kind is not None:
            flow[span["node"]][kind] += 1
    return {node: dict(kinds) for node, kinds in flow.items()}


def _critical_path(
    spans: list[dict[str, Any]], limit: int = 256
) -> list[PathStep]:
    """Backtrack the send→receive dependency chain from the last output.

    ``spans`` must be in file order (the recorder's total order).  The
    predecessor of a message-receive span is the latest earlier span at
    the *sender* node that emitted (``send:`` or ``broadcast:``) the
    same message kind in the same session; every other span chains to
    its node's previous span (local causality).  ``limit`` bounds the
    walk on pathological captures.
    """
    last_output = None
    for index in range(len(spans) - 1, -1, -1):
        if any(e.startswith("output:") for e in spans[index].get("effects", [])):
            last_output = index
            break
    if last_output is None:
        return []

    # node -> indices of that node's spans, ascending (for local edges).
    by_node: dict[int, list[int]] = defaultdict(list)
    for index, span in enumerate(spans):
        by_node[span["node"]].append(index)

    def emitted(span: dict[str, Any], kind: str) -> bool:
        return any(
            e == f"send:{kind}" or e == f"broadcast:{kind}"
            for e in span.get("effects", [])
        )

    def predecessor(index: int) -> int | None:
        span = spans[index]
        kind = _message_kind(span.get("event", ""))
        if kind is not None:
            sender = (span.get("data") or {}).get("sender")
            session = span.get("session")
            candidates = (
                by_node.get(sender, []) if sender is not None else range(index)
            )
            best = None
            for j in candidates:
                if j >= index:
                    break
                other = spans[j]
                if other.get("session") == session and emitted(other, kind):
                    best = j
            if best is not None:
                return best
        mine = by_node[span["node"]]
        position = mine.index(index)
        return mine[position - 1] if position > 0 else None

    path: list[PathStep] = []
    index: int | None = last_output
    seen: set[int] = set()
    while index is not None and index not in seen and len(path) < limit:
        seen.add(index)
        span = spans[index]
        path.append(
            PathStep(
                index=index,
                node=span["node"],
                session=span.get("session"),
                event=span.get("event", "?"),
                t=span.get("t", 0.0),
            )
        )
        index = predecessor(index)
    path.reverse()
    return path


def _step_durations(
    spans: list[dict[str, Any]]
) -> dict[str, dict[str, float]]:
    by_event: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        duration = span.get("dur")
        if duration is None:
            continue  # pre-duration capture: backfilled as null
        by_event[span.get("event", "?")].append(duration)
    report: dict[str, dict[str, float]] = {}
    for event, values in sorted(by_event.items()):
        values.sort()
        report[event] = {
            "count": len(values),
            "p50": percentile(values, 0.50),
            "p90": percentile(values, 0.90),
            "p99": percentile(values, 0.99),
            "max": values[-1],
        }
    return report


def analyze_capture(capture: Capture) -> TraceReport:
    spans = capture.spans
    if not spans:
        raise ReplayError("capture contains no spans to analyze")
    return TraceReport(
        meta=capture.meta,
        spans=len(spans),
        phases=_phase_breakdown(spans),
        thresholds=_thresholds(capture.meta),
        flow=_flow_matrix(spans),
        critical_path=_critical_path(spans),
        step_durations=_step_durations(spans),
    )


def analyze_file(path: Any) -> TraceReport:
    return analyze_capture(load_capture(path))
