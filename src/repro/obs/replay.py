"""Deterministic re-execution of flight-recorder captures.

A payload-mode capture (see :class:`repro.obs.trace.JsonlTraceSink`) is
a complete event transcript: for every ``MachineDriver.dispatch`` it
stores the node, the backend clock at consumption time, and the event's
canonical wire encoding.  Because protocols are sans-I/O machines whose
only inputs are those events plus deterministic per-node RNG streams,
replaying the transcript through fresh machines in the sim driver *is*
the original execution — down to the bytes of every ``Output`` effect.
:func:`replay_capture` does exactly that and checks the reproduced
:func:`~repro.runtime.trace.transcript_hash` against the one the
recorder wrote at close.

What replay rebuilds (and how it knows):

* the deployment — the capture's leading meta record names the CLI
  command, group, codec and full :class:`~repro.dkg.config.DkgConfig`
  parameters, so machines are reconstructed with the runner's exact
  enrollment-RNG seeds (``("dkg-pki", seed)`` etc.);
* the network — not at all: captured ``MessageReceived`` events stand
  in for it, and ``Send``/``Broadcast`` effects are dropped on the
  replay transport;
* timers — captured ``TimerFired`` events are dispatched directly.
  Re-execution re-arms the same timers in the same order (machine and
  runtime timer-id counters are deterministic), so recorded ids route
  to the right session;
* multi-session state — ``renew-N`` / ``add-1`` sessions are built
  from the *replayed* outputs of their predecessor sessions, mirroring
  the live orchestrators' share/commitment chaining (crashed nodes
  that never renewed get ``prev_share=None``, exactly like live).

Captures from ``repro serve`` (client-driven traffic) record fine but
are analysis-only; :func:`replay_capture` raises :class:`ReplayError`
for them.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable

from repro.obs.trace import tag_from_json
from repro.runtime.driver import MachineDriver
from repro.runtime.events import (
    Crashed,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)
from repro.runtime.runtime import ProtocolRuntime
from repro.runtime.trace import transcript_hash


class ReplayError(Exception):
    """The capture cannot be re-executed (wrong mode, missing data)."""


class TruncatedCaptureError(ReplayError):
    """The capture file ends mid-write (no end record / partial line).

    A recorder that died mid-run — or a fuzz reproducer interrupted
    while being emitted — leaves exactly this shape behind, so callers
    (the CLI, the fuzzer) distinguish it from structurally bad input.
    """


class FrameDecodeError(ReplayError):
    """A captured wire frame failed to decode back into an event.

    Pristine captures never hit this (frames round-trip by
    construction); mutated schedules from :mod:`repro.fuzz` reach it
    whenever a bit-flip lands outside the codec's validity envelope —
    the replay-level analogue of a garbled frame dropped on the wire.
    """


@dataclass
class Capture:
    """A parsed flight-recorder file."""

    meta: dict[str, Any]
    records: list[dict[str, Any]]  # spans + control lines, file order
    recorded_hash: str | None
    recorded_outputs: int | None = None
    has_end: bool = False  # the recorder's close marker was seen

    @property
    def spans(self) -> list[dict[str, Any]]:
        return [r for r in self.records if "event" in r]


def load_capture(source: Any) -> Capture:
    """Parse a capture from a path or an open text file."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    meta: dict[str, Any] = {}
    records: list[dict[str, Any]] = []
    recorded_hash: str | None = None
    recorded_outputs: int | None = None
    has_end = False
    non_empty = [number for number, line in enumerate(lines, start=1) if line.strip()]
    last_line = non_empty[-1] if non_empty else 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if number == last_line:
                # A bad *final* line is the signature of a recorder (or
                # reproducer emit) killed mid-write, not of a corrupt file.
                raise TruncatedCaptureError(
                    f"line {number}: not JSON — partial line at end of "
                    f"capture, truncated file? ({exc})"
                ) from exc
            raise ReplayError(f"line {number}: not JSON ({exc})") from exc
        kind = record.get("record")
        if kind == "meta":
            meta = record
        elif kind == "end":
            has_end = True
            recorded_hash = record.get("transcript_hash")
            recorded_outputs = record.get("outputs")
        else:
            records.append(record)
    return Capture(meta, records, recorded_hash, recorded_outputs, has_end)


def capture_meta(
    cmd: str,
    config: Any,
    seed: int,
    transport: str,
    **extra: Any,
) -> dict[str, Any]:
    """The meta record a recorder writes so replay can rebuild the run.

    Shared by the CLI's ``--trace-out`` plumbing and the tests, so the
    two never drift on what replay needs.
    """
    return {
        "cmd": cmd,
        "transport": transport,
        "seed": seed,
        "group": config.group.name,
        "codec": config.codec.name,
        "config": {
            "n": config.n,
            "t": config.t,
            "f": config.f,
            "d_budget": config.d_budget,
            "initial_leader": config.initial_leader,
            "timeout": [
                config.timeout.initial,
                config.timeout.multiplier,
                config.timeout.cap,
            ],
            "q_size": config.q_size,
        },
        **extra,
    }


def resolve_group_name(name: str) -> Any:
    """A group object for a capture's recorded group name."""
    from repro.net.wire import _group_from_name

    group = _group_from_name(name)
    if group is None:
        raise ReplayError(f"unknown group name {name!r} in capture meta")
    return group


def _config_from_meta(meta: dict[str, Any]) -> Any:
    from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec
    from repro.dkg.config import DkgConfig
    from repro.sim.clock import TimeoutPolicy

    try:
        group = resolve_group_name(meta["group"])
        codec = (
            HashedMatrixCodec()
            if meta["codec"] == "hashed-matrix"
            else FullMatrixCodec()
        )
        params = meta["config"]
        initial, multiplier, cap = params["timeout"]
        return DkgConfig(
            n=params["n"],
            t=params["t"],
            f=params["f"],
            group=group,
            codec=codec,
            d_budget=params["d_budget"],
            initial_leader=params["initial_leader"],
            timeout=TimeoutPolicy(initial, multiplier, cap),
            q_size=params["q_size"],
        )
    except KeyError as exc:
        raise ReplayError(f"capture meta lacks {exc} — not a payload capture?")


class ReplayTransport:
    """The :class:`~repro.net.transport.Transport` surface of a replay.

    The captured event stream *is* the network, so sends vanish; timers
    only need fresh backend ids (fires come from the capture); the
    clock is pinned to each span's recorded ``t`` before dispatch; the
    per-node RNG streams mirror the live transports' derivation
    (``("node", seed, node_id)``), cached so they advance continuously.
    """

    def __init__(
        self,
        node_id: int,
        seed: int,
        members: list[int],
        outputs: list[tuple[int, Any]],
    ):
        self.node_id = node_id
        self.seed = seed
        self.members = sorted(members)
        self.now = 0.0
        self._outputs = outputs
        self._timer_ids = count(1)
        self._node_rngs: dict[int, random.Random] = {}

    def current_time(self) -> float:
        return self.now

    def member_ids(self) -> list[int]:
        return list(self.members)

    def node_rng(self, node_id: int) -> random.Random:
        if node_id not in self._node_rngs:
            self._node_rngs[node_id] = random.Random(
                ("node", self.seed, node_id).__repr__()
            )
        return self._node_rngs[node_id]

    def enqueue_message(self, sender: int, recipient: int, payload: Any) -> None:
        pass  # the capture stands in for the network

    def set_timer(self, node: int, delay: float, tag: Any) -> int:
        return next(self._timer_ids)

    def cancel_timer(self, node: int, timer_id: int) -> None:
        pass

    def record_output(self, node: int, payload: Any) -> None:
        self._outputs.append((node, payload))

    def record_leader_change(self) -> None:
        pass


# -- deployment factories ------------------------------------------------------
#
# One per recorded command: given the replayed world so far, build the
# machine a session-open control record asks for — with the exact
# construction (PKI seeds, prior-session state) the live runner used.


class _DeploymentFactory:
    def __init__(self, meta: dict[str, Any], config: Any, world: "ReplayWorld"):
        self.meta = meta
        self.config = config
        self.world = world

    def machine(self, node: int, session: str) -> Any:
        raise NotImplementedError

    # Prior-session results, re-derived from the *replayed* outputs.

    def _session_result(
        self, session: str, kind_attr: str = "share"
    ) -> tuple[dict[int, Any], Any]:
        """(per-node payload with ``share``, any node's commitment)."""
        payloads: dict[int, Any] = {}
        commitment = None
        for node, runtime in self.world.runtimes.items():
            for payload in runtime.session_outputs.get(session, []):
                if hasattr(payload, kind_attr):
                    payloads[node] = payload
                    commitment = getattr(payload, "commitment", commitment)
        if not payloads:
            raise ReplayError(
                f"session {session!r} produced no outputs to chain from"
            )
        return payloads, commitment


class _DkgFactory(_DeploymentFactory):
    """``repro dkg`` / ``repro cluster``: one DKG session."""

    def __init__(self, meta: dict[str, Any], config: Any, world: "ReplayWorld"):
        super().__init__(meta, config, world)
        from repro.dkg.runner import build_dkg_deployment

        _ca, self.nodes = build_dkg_deployment(
            config, seed=meta["seed"], tau=meta.get("tau", 0)
        )

    def machine(self, node: int, session: str) -> Any:
        try:
            return self.nodes[node]
        except KeyError:
            raise ReplayError(f"node {node} is not in the DKG deployment")


class _RenewalFactory(_DeploymentFactory):
    """``repro renew --transport tcp``: bootstrap + renew-N sessions."""

    def __init__(self, meta: dict[str, Any], config: Any, world: "ReplayWorld"):
        super().__init__(meta, config, world)
        from repro.sim.pki import CertificateAuthority, KeyStore

        enroll_rng = random.Random(("net-renewal-pki", meta["seed"]).__repr__())
        self.ca = CertificateAuthority(config.group)
        self.keystores = {
            i: KeyStore.enroll(i, self.ca, enroll_rng)
            for i in config.vss().indices
        }

    def machine(self, node: int, session: str) -> Any:
        from repro.dkg.node import DkgNode
        from repro.proactive.renewal import RenewalNode

        if session == "dkg":
            return DkgNode(node, self.config, self.keystores[node], self.ca, tau=0)
        if not session.startswith("renew-"):
            raise ReplayError(f"unexpected session {session!r} in renew capture")
        phase = int(session.split("-", 1)[1])
        previous = "dkg" if phase == 1 else f"renew-{phase - 1}"
        payloads, commitment = self._session_result(previous)
        prior = payloads.get(node)
        return RenewalNode(
            node,
            self.config,
            self.keystores[node],
            self.ca,
            phase=phase,
            prev_share=prior.share if prior is not None else None,
            prev_commitment=commitment,
        )


class _GroupModFactory(_DeploymentFactory):
    """``repro groupmod --transport tcp``: dkg, agree-1, add-1."""

    def __init__(self, meta: dict[str, Any], config: Any, world: "ReplayWorld"):
        super().__init__(meta, config, world)
        from repro.sim.pki import CertificateAuthority, KeyStore

        enroll_rng = random.Random(
            ("net-groupmod-pki", meta["seed"]).__repr__()
        )
        self.ca = CertificateAuthority(config.group)
        self.keystores = {
            i: KeyStore.enroll(i, self.ca, enroll_rng)
            for i in config.vss().indices
        }
        self.joiner = meta.get("new_node")
        if self.joiner is None:
            raise ReplayError("groupmod capture meta lacks 'new_node'")

    def machine(self, node: int, session: str) -> Any:
        from repro.dkg.node import DkgNode
        from repro.groupmod.addition import AdditionNode, JoiningNode
        from repro.groupmod.agreement import GroupModAgreementNode
        from repro.proactive.renewal import share_commitment_at

        if session == "dkg":
            return DkgNode(node, self.config, self.keystores[node], self.ca, tau=0)
        if session.startswith("agree-"):
            return GroupModAgreementNode(node, self.config.vss())
        if session.startswith("add-"):
            payloads, commitment = self._session_result("dkg")
            if node == self.joiner:
                return JoiningNode(
                    node,
                    t=self.config.t,
                    group_q=self.config.group.q,
                    expected_share_pk=share_commitment_at(commitment, node),
                )
            prior = payloads.get(node)
            if prior is None:
                raise ReplayError(f"node {node} has no bootstrap share")
            return AdditionNode(
                node,
                self.config,
                self.keystores[node],
                self.ca,
                new_node=self.joiner,
                current_share=prior.share,
                current_commitment=commitment,
                tau=1,
            )
        raise ReplayError(f"unexpected session {session!r} in groupmod capture")


_FACTORIES: dict[str, Callable[..., _DeploymentFactory]] = {
    "dkg": _DkgFactory,
    "cluster": _DkgFactory,
    "renew": _RenewalFactory,
    "groupmod": _GroupModFactory,
}


# -- the replay world ----------------------------------------------------------


class ReplayWorld:
    """Per-node drivers being fed the captured event stream.

    Public because :mod:`repro.fuzz` subclasses it: a mutated schedule
    is replayed through the same world-building, with decode failures
    and machine exceptions downgraded from hard errors to observations.
    """

    def __init__(self, capture: Capture):
        meta = capture.meta
        if not meta:
            raise ReplayError("capture has no meta record — not a payload capture")
        self.meta = meta
        self.config = _config_from_meta(meta)
        self.group = self.config.group
        self.seed = meta["seed"]
        self.transport_kind = meta.get("transport", "sim")
        cmd = meta.get("cmd")
        factory_cls = _FACTORIES.get(cmd)
        if factory_cls is None:
            raise ReplayError(
                f"captures from {cmd!r} are analysis-only (no replay factory)"
            )
        if cmd in ("renew", "groupmod") and self.transport_kind != "tcp":
            # The sim orchestrators spin up a fresh simulation per
            # stage, so their captures interleave worlds replay cannot
            # reconstruct; the tcp runners keep one world end to end.
            raise ReplayError(
                f"sim-transport {cmd!r} captures are analysis-only; "
                "record with --transport tcp to replay"
            )
        self.outputs: list[tuple[int, Any]] = []
        self.transports: dict[int, ReplayTransport] = {}
        self.drivers: dict[int, MachineDriver] = {}
        self.runtimes: dict[int, ProtocolRuntime] = {}
        self.factory = factory_cls(meta, self.config, self)
        if self.transport_kind == "sim":
            # Plain machines, no session multiplexing, fixed membership
            # (exactly what the sim runner drives).
            for i in self.config.vss().indices:
                transport = ReplayTransport(
                    i, self.seed, list(self.config.vss().indices), self.outputs
                )
                self.transports[i] = transport
                self.drivers[i] = MachineDriver(
                    self.factory.machine(i, "dkg"), transport, i
                )

    def _tcp_driver(self, node: int) -> MachineDriver:
        if node not in self.drivers:
            transport = ReplayTransport(node, self.seed, [], self.outputs)
            runtime = ProtocolRuntime(node)
            self.transports[node] = transport
            self.runtimes[node] = runtime
            self.drivers[node] = MachineDriver(runtime, transport, node)
        return self.drivers[node]

    def open_session(self, record: dict[str, Any]) -> None:
        node = record["node"]
        session = record["session"]
        driver = self._tcp_driver(node)
        self.transports[node].members = sorted(record.get("members", []))
        runtime = self.runtimes[node]
        if session not in runtime.sessions:
            runtime.open_session(session, self.factory.machine(node, session))

    def decode_frame(self, frame_hex: str) -> Any:
        from repro.net import wire

        try:
            return wire.decode(bytes.fromhex(frame_hex), group=self.group)
        except ValueError as exc:
            # WireError is a ValueError; bad hex raises one directly.
            raise FrameDecodeError(f"frame does not decode: {exc}") from exc

    def dispatch_span(self, record: dict[str, Any]) -> None:
        data = record.get("data")
        if data is None:
            raise ReplayError(
                "capture has label-only spans — re-record with --trace-out "
                "(payload mode) to make it replayable"
            )
        node = record["node"]
        if self.transport_kind == "sim":
            driver = self.drivers.get(node)
            if driver is None:
                raise ReplayError(f"span for unknown node {node}")
        else:
            driver = self._tcp_driver(node)
        kind = data["type"]
        if kind == "message":
            payload = self.decode_frame(data["frame"])
            event: Any = MessageReceived(data["sender"], payload)
        elif kind == "operator":
            payload = self.decode_frame(data["frame"])
            event = OperatorInput(payload)
        elif kind == "timer":
            event = TimerFired(tag_from_json(data["tag"]), data["id"])
        elif kind == "crash":
            event = Crashed()
        elif kind == "recover":
            event = Recovered()
        else:
            raise ReplayError(f"unknown captured event type {kind!r}")
        self.transports[node].now = record.get("t", 0.0)
        driver.dispatch(event)


@dataclass
class ReplayResult:
    """Outcome of re-executing a capture."""

    meta: dict[str, Any]
    recorded_hash: str | None
    replayed_hash: str
    outputs: int
    spans: int

    @property
    def matched(self) -> bool:
        return (
            self.recorded_hash is not None
            and self.recorded_hash == self.replayed_hash
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "cmd": self.meta.get("cmd"),
            "transport": self.meta.get("transport"),
            "group": self.meta.get("group"),
            "seed": self.meta.get("seed"),
            "spans": self.spans,
            "outputs": self.outputs,
            "recorded_hash": self.recorded_hash,
            "replayed_hash": self.replayed_hash,
            "matched": self.matched,
        }


def replay_capture(capture: Capture) -> ReplayResult:
    """Re-execute a parsed capture; the result carries both hashes."""
    world = ReplayWorld(capture)
    # A payload-mode recorder writes the end record (with the transcript
    # hash) at close — a payload capture without one was interrupted
    # mid-run and has nothing to verify the replay against.  Label-only
    # sinks write no end record at all; their spans (no "data") fall
    # through to the label-only rejection below.
    payload_mode = any("data" in r for r in capture.spans)
    if not capture.has_end and (payload_mode or not capture.spans):
        raise TruncatedCaptureError(
            "capture has no end record — recorder interrupted mid-run "
            "or file truncated"
        )
    spans = 0
    for record in capture.records:
        if record.get("record") == "open":
            world.open_session(record)
        elif "event" in record:
            world.dispatch_span(record)
            spans += 1
    return ReplayResult(
        meta=capture.meta,
        recorded_hash=capture.recorded_hash,
        replayed_hash=transcript_hash(world.outputs, group=world.group),
        outputs=len(world.outputs),
        spans=spans,
    )


def replay_file(path: Any) -> ReplayResult:
    return replay_capture(load_capture(path))
