"""Driver-agnostic structured tracing of machine transitions.

Every backend — the discrete-event :class:`~repro.sim.runner.Simulation`,
the asyncio :class:`~repro.net.host.NodeHost`, the service forge — steps
machines through the same :class:`~repro.runtime.driver.MachineDriver`,
so that seam is the one place a complete execution transcript can be
captured regardless of transport.  The driver emits one
:class:`TraceSpan` per ``step(event) -> [Effect]`` transition: the node,
the event kind, the session it routed to (unwrapped from
:class:`~repro.runtime.envelope.SessionEnvelope` payloads and
session-namespaced timer tags), the effect kinds produced, and both the
backend clock and wall clock.

Spans are JSON-ready; :class:`JsonlTraceSink` appends one JSON object
per line (the record/replay capture format), :class:`MemoryTraceSink`
keeps a bounded in-memory list for tests and interactive debugging.
This supersedes the sim-only :class:`repro.sim.tracing.Tracer`, which
remains for queue-level (pre-dispatch) views of simulated runs.
"""

from __future__ import annotations

import json
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    LeaderChange,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.envelope import SessionEnvelope
from repro.runtime.events import (
    Crashed,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)


@dataclass(frozen=True)
class TraceSpan:
    """One machine transition: the event consumed and effects produced."""

    node: int
    event: str
    session: str | None
    effects: tuple[str, ...]
    sim_time: float
    wall_time: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "event": self.event,
            "session": self.session,
            "effects": list(self.effects),
            "t": self.sim_time,
            "wall": self.wall_time,
        }


def _payload_kind(payload: Any) -> str:
    return getattr(payload, "kind", type(payload).__name__)


def describe_event(event: Any) -> tuple[str, str | None]:
    """``(label, session)`` for an event; session from the envelope or
    a runtime-namespaced ``(session, tag)`` timer tag, else ``None``."""
    session: str | None = None
    if isinstance(event, MessageReceived):
        payload = event.payload
        if isinstance(payload, SessionEnvelope):
            session = payload.session
            payload = payload.payload
        return f"message:{_payload_kind(payload)}", session
    if isinstance(event, OperatorInput):
        payload = event.payload
        if isinstance(payload, SessionEnvelope):
            session = payload.session
            payload = payload.payload
        return f"operator:{_payload_kind(payload)}", session
    if isinstance(event, TimerFired):
        tag = event.tag
        if isinstance(tag, tuple) and len(tag) == 2 and isinstance(tag[0], str):
            session, tag = tag
        return f"timer:{tag}", session
    if isinstance(event, Crashed):
        return "crash", None
    if isinstance(event, Recovered):
        return "recover", None
    return type(event).__name__, None


def describe_effect(effect: Any) -> str:
    if isinstance(effect, Send):
        payload = effect.payload
        if isinstance(payload, SessionEnvelope):
            payload = payload.payload
        return f"send:{_payload_kind(payload)}"
    if isinstance(effect, Broadcast):
        payload = effect.payload
        if isinstance(payload, SessionEnvelope):
            payload = payload.payload
        return f"broadcast:{_payload_kind(payload)}"
    if isinstance(effect, SetTimer):
        return "set-timer"
    if isinstance(effect, CancelTimer):
        return "cancel-timer"
    if isinstance(effect, Output):
        return f"output:{_payload_kind(effect.payload)}"
    if isinstance(effect, LeaderChange):
        return "leader-change"
    if isinstance(effect, SpawnSession):
        return f"spawn:{effect.session}"
    return type(effect).__name__


def span_for(
    node: int, event: Any, effects: list[Any], sim_time: float
) -> TraceSpan:
    label, session = describe_event(event)
    return TraceSpan(
        node=node,
        event=label,
        session=session,
        effects=tuple(describe_effect(e) for e in effects),
        sim_time=sim_time,
        wall_time=_time.time(),
    )


class TraceSink(Protocol):
    """Anything that accepts spans (duck-typed; see the two below)."""

    def record(self, span: TraceSpan) -> None: ...


@dataclass
class MemoryTraceSink:
    """Bounded in-memory span store for tests and debugging."""

    limit: int = 100_000
    spans: list[TraceSpan] = field(default_factory=list)
    dropped: int = 0

    def record(self, span: TraceSpan) -> None:
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return
        self.spans.append(span)

    def for_node(self, node: int) -> list[TraceSpan]:
        return [s for s in self.spans if s.node == node]

    def sessions(self) -> set[str]:
        return {s.session for s in self.spans if s.session is not None}

    def output_kinds(self, node: int | None = None) -> set[str]:
        """The distinct ``output:*`` effect labels (optionally per node)."""
        return {
            effect
            for span in self.spans
            if node is None or span.node == node
            for effect in span.effects
            if effect.startswith("output:")
        }


class JsonlTraceSink:
    """Appends one JSON object per span to ``path`` (or a file object)."""

    def __init__(self, path: Any):
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, "a", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, span: TraceSpan) -> None:
        line = json.dumps(span.as_dict(), separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self.recorded += 1

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> JsonlTraceSink:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- the active sink -----------------------------------------------------------

_sink: TraceSink | None = None


def trace_sink() -> TraceSink | None:
    """The process-wide sink drivers fall back to (``None`` = off)."""
    return _sink


def set_trace_sink(sink: TraceSink | None) -> TraceSink | None:
    """Install the process-wide sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous
