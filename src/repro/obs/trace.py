"""Driver-agnostic structured tracing of machine transitions.

Every backend — the discrete-event :class:`~repro.sim.runner.Simulation`,
the asyncio :class:`~repro.net.host.NodeHost`, the service forge — steps
machines through the same :class:`~repro.runtime.driver.MachineDriver`,
so that seam is the one place a complete execution transcript can be
captured regardless of transport.  The driver emits one
:class:`TraceSpan` per ``step(event) -> [Effect]`` transition: the node,
the event kind, the session it routed to (unwrapped from
:class:`~repro.runtime.envelope.SessionEnvelope` payloads and
session-namespaced timer tags), the effect kinds produced, the backend
clock and wall clock, and the transition's ``perf_counter`` duration.

Spans are JSON-ready; :class:`JsonlTraceSink` appends one JSON object
per line, :class:`MemoryTraceSink` keeps a bounded in-memory list for
tests and interactive debugging.  This supersedes the sim-only
:class:`repro.sim.tracing.Tracer`, which remains for queue-level
(pre-dispatch) views of simulated runs.

**Flight recording.**  With ``payloads=True`` a :class:`JsonlTraceSink`
is a full-fidelity flight recorder: every span additionally carries the
event's canonical wire encoding (hex, via :mod:`repro.net.wire`,
group-tagged through the capture's meta record so both group backends
round-trip) and the wire frames of its ``Output`` effects.  Because
protocols are sans-I/O machines, that event stream *is* the execution:
:mod:`repro.obs.replay` re-runs it bit-identically through the sim
driver and checks the reproduced transcript hash against the one the
sink records at close; :mod:`repro.obs.analysis` mines the same file
for phase latencies, flow matrices and critical paths.
"""

from __future__ import annotations

import json
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.obs.logging import get_logger
from repro.runtime.effects import (
    Broadcast,
    CancelTimer,
    LeaderChange,
    Output,
    Send,
    SetTimer,
    SpawnSession,
)
from repro.runtime.envelope import SessionEnvelope, SessionTimerTag
from repro.runtime.events import (
    Crashed,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)


@dataclass(frozen=True)
class TraceSpan:
    """One machine transition: the event consumed and effects produced.

    ``duration`` is the transition's ``perf_counter``-measured step +
    apply cost in seconds (``None`` when decoding captures that predate
    the field).  ``data`` and ``outputs`` are populated only in payload
    mode: the wire-encoded event and the wire frames of the
    transition's ``Output`` effects, all lowercase hex.
    """

    node: int
    event: str
    session: str | None
    effects: tuple[str, ...]
    sim_time: float
    wall_time: float
    duration: float | None = None
    data: dict[str, Any] | None = None
    outputs: tuple[str, ...] | None = None

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "node": self.node,
            "event": self.event,
            "session": self.session,
            "effects": list(self.effects),
            "t": self.sim_time,
            "wall": self.wall_time,
            "dur": self.duration,
        }
        if self.data is not None:
            record["data"] = self.data
        if self.outputs is not None:
            record["outputs"] = list(self.outputs)
        return record


def _payload_kind(payload: Any) -> str:
    return getattr(payload, "kind", type(payload).__name__)


def describe_event(event: Any) -> tuple[str, str | None]:
    """``(label, session)`` for an event; session from the envelope or
    a runtime-namespaced :class:`SessionTimerTag`, else ``None``.

    A machine's own tuple-shaped tag — e.g. the DKG's
    ``("dkg-timeout", view)`` — is *not* session namespacing and stays
    intact in the label.
    """
    session: str | None = None
    if isinstance(event, MessageReceived):
        payload = event.payload
        if isinstance(payload, SessionEnvelope):
            session = payload.session
            payload = payload.payload
        return f"message:{_payload_kind(payload)}", session
    if isinstance(event, OperatorInput):
        payload = event.payload
        if isinstance(payload, SessionEnvelope):
            session = payload.session
            payload = payload.payload
        return f"operator:{_payload_kind(payload)}", session
    if isinstance(event, TimerFired):
        tag = event.tag
        if isinstance(tag, SessionTimerTag):
            session, tag = tag.session, tag.tag
        return f"timer:{tag}", session
    if isinstance(event, Crashed):
        return "crash", None
    if isinstance(event, Recovered):
        return "recover", None
    return type(event).__name__, None


def describe_effect(effect: Any) -> str:
    if isinstance(effect, Send):
        payload = effect.payload
        if isinstance(payload, SessionEnvelope):
            payload = payload.payload
        return f"send:{_payload_kind(payload)}"
    if isinstance(effect, Broadcast):
        payload = effect.payload
        if isinstance(payload, SessionEnvelope):
            payload = payload.payload
        return f"broadcast:{_payload_kind(payload)}"
    if isinstance(effect, SetTimer):
        return "set-timer"
    if isinstance(effect, CancelTimer):
        return "cancel-timer"
    if isinstance(effect, Output):
        return f"output:{_payload_kind(effect.payload)}"
    if isinstance(effect, LeaderChange):
        return "leader-change"
    if isinstance(effect, SpawnSession):
        return f"spawn:{effect.session}"
    return type(effect).__name__


# -- payload capture -----------------------------------------------------------


def tag_to_json(tag: Any) -> Any:
    """A JSON encoding of a timer tag that survives the round trip.

    Machines compare tags by equality, and tags are routinely tuples
    (``("dkg-timeout", view)``), which plain JSON would flatten into
    lists — so tuples travel as ``{"__tuple__": [...]}`` and the
    runtime's :class:`SessionTimerTag` as ``{"__stag__": [...]}``.
    """
    if isinstance(tag, SessionTimerTag):
        return {"__stag__": [tag.session, tag_to_json(tag.tag)]}
    if isinstance(tag, tuple):
        return {"__tuple__": [tag_to_json(item) for item in tag]}
    if isinstance(tag, list):
        return [tag_to_json(item) for item in tag]
    return tag


def tag_from_json(obj: Any) -> Any:
    """Inverse of :func:`tag_to_json`."""
    if isinstance(obj, dict):
        if "__stag__" in obj:
            session, inner = obj["__stag__"]
            return SessionTimerTag(session, tag_from_json(inner))
        if "__tuple__" in obj:
            return tuple(tag_from_json(item) for item in obj["__tuple__"])
        return obj
    if isinstance(obj, list):
        return [tag_from_json(item) for item in obj]
    return obj


@dataclass(frozen=True)
class PayloadCodec:
    """Wire-encodes events and outputs for full-payload capture.

    ``group`` pins the canonical per-group serialization (and is named
    in the capture's meta record), so frames round-trip on both the
    modp and elliptic-curve backends.  Frames are always encoded with
    inline commitments: at the driver seam every digest-compressed
    payload has already been resolved, so the capture is self-contained
    and replay needs no resolver.
    """

    group: Any = None

    def encode_frame(self, payload: Any) -> str:
        from repro.net import wire

        return wire.encode(payload, group=self.group).hex()

    def event_data(self, event: Any) -> dict[str, Any]:
        if isinstance(event, MessageReceived):
            return {
                "type": "message",
                "sender": event.sender,
                "frame": self.encode_frame(event.payload),
            }
        if isinstance(event, OperatorInput):
            return {"type": "operator", "frame": self.encode_frame(event.payload)}
        if isinstance(event, TimerFired):
            return {
                "type": "timer",
                "tag": tag_to_json(event.tag),
                "id": event.timer_id,
            }
        if isinstance(event, Crashed):
            return {"type": "crash"}
        if isinstance(event, Recovered):
            return {"type": "recover"}
        return {"type": type(event).__name__}

    def output_frames(self, effects: list[Any]) -> tuple[str, ...]:
        return tuple(
            self.encode_frame(effect.payload)
            for effect in effects
            if isinstance(effect, Output)
        )


def span_for(
    node: int,
    event: Any,
    effects: list[Any],
    sim_time: float,
    *,
    duration: float | None = None,
    codec: PayloadCodec | None = None,
) -> TraceSpan:
    label, session = describe_event(event)
    return TraceSpan(
        node=node,
        event=label,
        session=session,
        effects=tuple(describe_effect(e) for e in effects),
        sim_time=sim_time,
        wall_time=_time.time(),
        duration=duration,
        data=codec.event_data(event) if codec is not None else None,
        outputs=codec.output_frames(effects) if codec is not None else None,
    )


class TraceSink(Protocol):
    """Anything that accepts spans (duck-typed; see the two below)."""

    def record(self, span: TraceSpan) -> None: ...


@dataclass
class MemoryTraceSink:
    """Bounded in-memory span store for tests and debugging."""

    limit: int = 100_000
    spans: list[TraceSpan] = field(default_factory=list)
    dropped: int = 0

    def record(self, span: TraceSpan) -> None:
        if len(self.spans) >= self.limit:
            if self.dropped == 0:
                get_logger("repro.obs.trace").warning(
                    "MemoryTraceSink at its %d-span limit; dropping further "
                    "spans (raise `limit` or switch to JsonlTraceSink)",
                    self.limit,
                )
            self.dropped += 1
            return
        self.spans.append(span)

    def for_node(self, node: int) -> list[TraceSpan]:
        return [s for s in self.spans if s.node == node]

    def sessions(self) -> set[str]:
        return {s.session for s in self.spans if s.session is not None}

    def output_kinds(self, node: int | None = None) -> set[str]:
        """The distinct ``output:*`` effect labels (optionally per node)."""
        return {
            effect
            for span in self.spans
            if node is None or span.node == node
            for effect in span.effects
            if effect.startswith("output:")
        }


DEFAULT_FLUSH_EVERY = 16


class JsonlTraceSink:
    """Appends one JSON object per span to ``path`` (or a file object).

    The buffer is flushed every ``flush_every`` records (and on
    :meth:`close`), so a crashed process loses at most a handful of
    trailing spans — the tail of exactly the run one wants to debug.

    ``payloads=True`` turns the sink into the flight recorder: spans
    carry wire-encoded event/output frames (see :class:`PayloadCodec`;
    ``group`` supplies the backend context), a ``meta`` dict is written
    as the leading ``{"record": "meta", ...}`` line, orchestration
    layers may append ``{"record": "open", ...}`` session-open control
    lines via :meth:`record_control`, and :meth:`close` appends a
    ``{"record": "end", ...}`` line holding the run's
    :func:`~repro.runtime.trace.transcript_hash` over every captured
    ``Output`` frame (also available as :attr:`transcript` afterwards).
    """

    def __init__(
        self,
        path: Any,
        *,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        payloads: bool = False,
        group: Any = None,
        meta: dict[str, Any] | None = None,
        mode: str = "a",
    ):
        if hasattr(path, "write"):
            self._fh = path
            self._owns = False
        else:
            self._fh = open(path, mode, encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()
        self._flush_every = max(1, flush_every)
        self._pending = 0
        self.recorded = 0
        self.payload_codec = PayloadCodec(group) if payloads else None
        self._output_frames: list[tuple[int, bytes]] = []
        self.transcript: str | None = None
        self._closed = False
        if meta is not None:
            self._write({"record": "meta", **meta})

    def _write(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._pending += 1
            if self._pending >= self._flush_every:
                self._fh.flush()
                self._pending = 0

    def record(self, span: TraceSpan) -> None:
        if span.outputs:
            with self._lock:
                self._output_frames.extend(
                    (span.node, bytes.fromhex(frame)) for frame in span.outputs
                )
        self._write(span.as_dict())
        with self._lock:
            self.recorded += 1

    def record_control(self, record: dict[str, Any]) -> None:
        """Append an out-of-band control line (e.g. a session open)."""
        self._write(record)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.payload_codec is not None:
            from repro.runtime.trace import transcript_hash_frames

            self.transcript = transcript_hash_frames(self._output_frames)
            self._write(
                {
                    "record": "end",
                    "transcript_hash": self.transcript,
                    "outputs": len(self._output_frames),
                    "spans": self.recorded,
                }
            )
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> JsonlTraceSink:
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- the active sink -----------------------------------------------------------

_sink: TraceSink | None = None


def trace_sink() -> TraceSink | None:
    """The process-wide sink drivers fall back to (``None`` = off)."""
    return _sink


def set_trace_sink(sink: TraceSink | None) -> TraceSink | None:
    """Install the process-wide sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous
