"""Named structured loggers carrying node/session context.

Hosts and service components log through adapters built here, so every
record from ``repro.net.host`` / ``repro.service.*`` is prefixed with a
stable ``key=value`` context block (node id, session id, ...) without
each call site re-interpolating it.  Standard :mod:`logging` underneath
— handlers, levels and propagation behave exactly as users configure
them.
"""

from __future__ import annotations

import logging
from typing import Any


class ContextAdapter(logging.LoggerAdapter):
    """Prefixes every record with the adapter's ``key=value`` context."""

    def process(self, msg: str, kwargs: dict) -> tuple[str, dict]:
        context = " ".join(f"{k}={v}" for k, v in self.extra.items())
        return (f"[{context}] {msg}", kwargs) if context else (msg, kwargs)

    def bind(self, **context: Any) -> ContextAdapter:
        """A child adapter with extra context merged in."""
        merged = dict(self.extra)
        merged.update({k: v for k, v in context.items() if v is not None})
        return ContextAdapter(self.logger, merged)


def get_logger(name: str, **context: Any) -> ContextAdapter:
    """A structured logger named ``name`` with ``context`` attached
    (``None``-valued context keys are dropped)."""
    extra = {k: v for k, v in context.items() if v is not None}
    return ContextAdapter(logging.getLogger(name), extra)
