"""A dependency-free HTTP exposition endpoint for the metrics registry.

Serves three paths over plain asyncio (no web framework in the image):

* ``/metrics`` — Prometheus text exposition;
* ``/metrics.json`` — the JSON snapshot (same document as the OPS wire
  frame's ``metrics`` field);
* ``/healthz`` — liveness probe.

Started by ``repro serve --metrics-port`` next to the service frontend;
also usable standalone around any workload that meters into the active
registry.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import metrics as obs_metrics


class MetricsHttpServer:
    """One-shot HTTP/1.1 responder (``Connection: close`` per request)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: obs_metrics.MetricsRegistry | None = None,
    ):
        self.host = host
        self.port = port
        self._registry = registry
        self._server: asyncio.AbstractServer | None = None

    def _reg(self) -> obs_metrics.MetricsRegistry | None:
        return self._registry if self._registry is not None else obs_metrics.registry()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            status, ctype, body = self._respond(path)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown race
                pass

    def _respond(self, path: str) -> tuple[str, str, bytes]:
        reg = self._reg()
        if path.startswith("/metrics.json"):
            doc = reg.snapshot() if reg is not None else {}
            return (
                "200 OK",
                "application/json",
                (json.dumps(doc, indent=2, default=str) + "\n").encode(),
            )
        if path == "/" or path.startswith("/metrics"):
            text = reg.render_text() if reg is not None else ""
            return ("200 OK", "text/plain; version=0.0.4", text.encode())
        if path.startswith("/healthz"):
            return ("200 OK", "text/plain", b"ok\n")
        return ("404 Not Found", "text/plain", b"not found\n")
