"""A thread-safe process-wide metrics registry.

Three metric kinds, all labelled:

* **counter** — monotone totals (``repro_net_frames_sent_total{kind}``);
* **gauge** — point-in-time levels (``repro_service_pool_depth``);
* **histogram** — latency/size distributions in log-spaced buckets.
  Only bucket counts are retained (no samples), and p50/p90/p99 are
  interpolated from the cumulative bucket counts, so memory stays O(1)
  per metric regardless of traffic.

The registry exports two views of the same data: :meth:`snapshot`, a
JSON-serializable dict (the OPS wire frame and ``/metrics.json``), and
:meth:`render_text`, Prometheus text exposition (``/metrics``).

Hot paths use the module-level helpers (:func:`counter_inc`,
:func:`gauge_set`, :func:`observe`) against the *active* registry; when
:func:`set_registry` has installed ``None`` they are no-ops, which is
how the overhead benchmark measures the instrumented stack against the
bare one.  Subsystems that cannot afford even a dict lookup per event
(the crypto engines) keep plain counters and publish them lazily via
:func:`register_collector` — collectors run at snapshot/render time.

Label cardinality is bounded: a family that accumulates more than
``label_limit`` distinct label sets raises :class:`CardinalityError`
instead of silently eating memory.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable

DEFAULT_LABEL_LIMIT = 512

#: Log-spaced latency buckets: three per decade from 100us to ~4600s,
#: plus the implicit +Inf bucket.  Wide enough for toy-group microtests
#: and multi-second realistic-group DKGs alike.
DEFAULT_BUCKETS = tuple(round(1e-4 * 10 ** (i / 3), 10) for i in range(24))


class CardinalityError(ValueError):
    """A metric family exceeded its distinct-label-set budget."""


class Counter:
    """A monotone counter child (one label set of a family)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def set_total(self, value: int) -> None:
        """Overwrite the total (collector-backed counters only)."""
        with self._lock:
            self.value = value


class Gauge:
    """A point-in-time level child."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Bucket-count histogram; quantiles interpolated from buckets.

    ``bounds`` are ascending upper bucket edges; observations equal to
    an edge land in that edge's bucket (``le`` semantics).  Values above
    the last edge land in the implicit +Inf bucket, and quantiles that
    fall there clamp to the last finite edge.
    """

    __slots__ = ("_lock", "bounds", "counts", "total", "sum")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]):
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.total += 1
            self.sum += value

    def quantile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile by linear interpolation
        within the bucket where the cumulative count crosses it.
        Returns 0.0 for an empty histogram."""
        with self._lock:
            total = self.total
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0.0
        for idx, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank or idx == len(counts) - 1:
                if idx >= len(self.bounds):
                    # +Inf bucket: clamp to the last finite edge.
                    return self.bounds[-1] if self.bounds else 0.0
                lo = self.bounds[idx - 1] if idx > 0 else 0.0
                hi = self.bounds[idx]
                inner = min(max((rank - cumulative) / count, 0.0), 1.0)
                return lo + (hi - lo) * inner
            cumulative += count
        return self.bounds[-1] if self.bounds else 0.0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All children (label sets) of one metric name."""

    __slots__ = ("kind", "name", "help", "buckets", "label_limit", "_children", "_lock")

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        buckets: tuple[float, ...],
        label_limit: int,
    ):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.buckets = buckets
        self.label_limit = label_limit
        self._children: dict[tuple, Any] = {}
        self._lock = threading.Lock()

    def child(self, labels: dict[str, Any]) -> Any:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self.label_limit:
                    raise CardinalityError(
                        f"metric {self.name!r} exceeded {self.label_limit} "
                        "distinct label sets"
                    )
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _KINDS[self.kind](self._lock)
                self._children[key] = child
        return child

    def items(self) -> list[tuple[tuple, Any]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process-wide (or scoped) collection of metric families."""

    def __init__(self, label_limit: int = DEFAULT_LABEL_LIMIT):
        self.label_limit = label_limit
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- metric accessors (create-on-first-use) --------------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._metric("counter", name, help, DEFAULT_BUCKETS, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._metric("gauge", name, help, DEFAULT_BUCKETS, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        return self._metric(
            "histogram", name, help, tuple(buckets or DEFAULT_BUCKETS), labels
        )

    def _metric(
        self,
        kind: str,
        name: str,
        help_text: str,
        buckets: tuple[float, ...],
        labels: dict[str, Any],
    ) -> Any:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = _Family(kind, name, help_text, buckets, self.label_limit)
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family.child(labels)

    # -- exposition ------------------------------------------------------------

    def snapshot(self, *, collect: bool = True) -> dict[str, Any]:
        """A JSON-serializable dict of every family and child."""
        if collect:
            run_collectors(self)
        out: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key, child in family.items():
                labels = dict(key)
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.total,
                            "sum": child.sum,
                            "p50": child.quantile(0.50),
                            "p90": child.quantile(0.90),
                            "p99": child.quantile(0.99),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[name] = {"type": family.kind, "help": family.help, "samples": samples}
        return out

    def render_text(self, *, collect: bool = True) -> str:
        """Prometheus text exposition (histograms as cumulative buckets)."""
        if collect:
            run_collectors(self)
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.items():
                labels = dict(key)
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(family.buckets, child.counts):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket"
                            f"{_label_str({**labels, 'le': _fmt(bound)})} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f'{name}_bucket{_label_str({**labels, "le": "+Inf"})} '
                        f"{child.total}"
                    )
                    lines.append(f"{name}_sum{_label_str(labels)} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{_label_str(labels)} {child.total}")
                else:
                    lines.append(f"{name}{_label_str(labels)} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


# -- the active registry and hot-path helpers ----------------------------------

_active: MetricsRegistry | None = MetricsRegistry()
_collectors: list[Callable[[MetricsRegistry], None]] = []


def registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` when metering is disabled."""
    return _active


def set_registry(reg: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``reg`` as the active registry; returns the previous one.

    Passing ``None`` disables all hot-path helpers (the benchmark's
    baseline mode); passing a fresh :class:`MetricsRegistry` scopes
    subsequent measurements (test isolation).
    """
    global _active
    previous = _active
    _active = reg
    return previous


def register_collector(fn: Callable[[MetricsRegistry], None]):
    """Register a snapshot-time collector (see :mod:`repro.crypto.metering`)."""
    _collectors.append(fn)
    return fn


def run_collectors(reg: MetricsRegistry) -> None:
    for fn in list(_collectors):
        try:
            fn(reg)
        except Exception:  # pragma: no cover - collectors are best-effort
            pass


def counter_inc(name: str, amount: int = 1, help: str = "", **labels: Any) -> None:
    reg = _active
    if reg is not None:
        reg.counter(name, help, **labels).inc(amount)


def gauge_set(name: str, value: float, help: str = "", **labels: Any) -> None:
    reg = _active
    if reg is not None:
        reg.gauge(name, help, **labels).set(value)


def observe(
    name: str,
    value: float,
    help: str = "",
    buckets: tuple[float, ...] | None = None,
    **labels: Any,
) -> None:
    reg = _active
    if reg is not None:
        reg.histogram(name, help, buckets, **labels).observe(value)


def snapshot() -> dict[str, Any]:
    """Snapshot of the active registry ({} when metering is disabled)."""
    reg = _active
    return reg.snapshot() if reg is not None else {}


def render_text() -> str:
    reg = _active
    return reg.render_text() if reg is not None else ""
