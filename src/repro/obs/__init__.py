"""Unified observability: metrics registry, structured tracing, ops surface.

``repro.obs`` is the one place every layer of the stack reports into:

* :mod:`repro.obs.metrics` — a thread-safe process-wide registry of
  labelled counters, gauges and log-bucketed latency histograms, with a
  JSON snapshot and Prometheus-style text exposition;
* :mod:`repro.obs.trace` — driver-agnostic structured tracing of every
  ``step(event) -> [Effect]`` transition at the
  :class:`~repro.runtime.driver.MachineDriver` seam (the capture format
  for record/replay);
* :mod:`repro.obs.http` — a dependency-free HTTP endpoint serving the
  text and JSON expositions (``repro serve --metrics-port``);
* :mod:`repro.obs.logging` — named structured loggers carrying
  node/session context.

The package deliberately imports nothing from the rest of ``repro`` at
module scope (except the low-level runtime event/effect vocabulary in
``trace``), so any layer — crypto, sim, net, service — can import it
without cycles.
"""

from repro.obs.metrics import (
    CardinalityError,
    MetricsRegistry,
    counter_inc,
    gauge_set,
    observe,
    register_collector,
    registry,
    set_registry,
)
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    TraceSpan,
    set_trace_sink,
    trace_sink,
)

__all__ = [
    "CardinalityError",
    "MetricsRegistry",
    "counter_inc",
    "gauge_set",
    "observe",
    "register_collector",
    "registry",
    "set_registry",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "TraceSpan",
    "set_trace_sink",
    "trace_sink",
]
