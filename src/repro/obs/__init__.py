"""Unified observability: metrics registry, structured tracing, ops surface.

``repro.obs`` is the one place every layer of the stack reports into:

* :mod:`repro.obs.metrics` — a thread-safe process-wide registry of
  labelled counters, gauges and log-bucketed latency histograms, with a
  JSON snapshot and Prometheus-style text exposition;
* :mod:`repro.obs.trace` — driver-agnostic structured tracing of every
  ``step(event) -> [Effect]`` transition at the
  :class:`~repro.runtime.driver.MachineDriver` seam, including the
  full-payload flight-recorder capture format;
* :mod:`repro.obs.replay` — deterministic re-execution of payload
  captures through the sim driver with transcript-hash verification
  (``repro replay``);
* :mod:`repro.obs.analysis` — offline capture analytics: phase
  latencies, flow matrices, critical paths, step-duration percentiles
  (``repro trace``);
* :mod:`repro.obs.fleet` — aggregation of per-shard OPS snapshots into
  one fleet view (``repro ops --fleet``, the shard router's surface);
* :mod:`repro.obs.http` — a dependency-free HTTP endpoint serving the
  text and JSON expositions (``repro serve --metrics-port``);
* :mod:`repro.obs.logging` — named structured loggers carrying
  node/session context.

The package deliberately imports nothing from the rest of ``repro`` at
module scope (except the low-level runtime event/effect vocabulary in
``trace``), so any layer — crypto, sim, net, service — can import it
without cycles; the replay/analysis names below resolve lazily for the
same reason (they pull in the driver and protocol layers).
"""

from typing import Any

from repro.obs.metrics import (
    CardinalityError,
    MetricsRegistry,
    counter_inc,
    gauge_set,
    observe,
    register_collector,
    registry,
    set_registry,
)
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    PayloadCodec,
    TraceSpan,
    set_trace_sink,
    trace_sink,
)

_LAZY = {
    "FLEET_SCHEMA": "repro.obs.fleet",
    "merge_fleet": "repro.obs.fleet",
    "shard_digest": "repro.obs.fleet",
    "Capture": "repro.obs.replay",
    "ReplayError": "repro.obs.replay",
    "ReplayResult": "repro.obs.replay",
    "capture_meta": "repro.obs.replay",
    "load_capture": "repro.obs.replay",
    "replay_capture": "repro.obs.replay",
    "replay_file": "repro.obs.replay",
    "resolve_group_name": "repro.obs.replay",
    "TraceReport": "repro.obs.analysis",
    "analyze_capture": "repro.obs.analysis",
    "analyze_file": "repro.obs.analysis",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "CardinalityError",
    "MetricsRegistry",
    "counter_inc",
    "gauge_set",
    "observe",
    "register_collector",
    "registry",
    "set_registry",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "PayloadCodec",
    "TraceSpan",
    "set_trace_sink",
    "trace_sink",
    *sorted(_LAZY),
]
