"""Fleet-wide aggregation of per-shard OPS snapshots.

The shard router serves M committees, each with its own OPS document
(``{"schema": 1, "status": {...}, "metrics": registry.snapshot()}``,
the PR-6 surface).  This module folds M of those into one fleet view:
per-shard pool depth / refill lag / per-kind request latency plus fleet
totals, the document behind ``repro ops --fleet``.

Two honesty rules shape the merge:

* **Histograms do not merge exactly.**  Percentiles interpolated from
  per-shard bucket counts cannot be combined into a true fleet
  percentile without the raw buckets, so fleet-level ``p50``/``p99``
  report the *maximum* across shards — a correct upper bound ("no
  shard is slower than this"), with counts summed so traffic volume
  stays truthful.
* **A crashed shard must not sink the snapshot.**  Shards whose OPS
  document is missing (fetch failed, process down) appear with
  ``ok: false`` and their error string; they are excluded from fleet
  sums but still counted, so the fleet view degrades instead of
  erroring — asserted in ``tests/service/test_fleet_merge.py``.

Metric scoping: shards embedded in the router process share one
registry, so their samples are distinguished by a ``shard`` label
(``labeled=True`` entries filter on it); remote shards run their own
registry and their whole snapshot belongs to them (``labeled=False``).
"""

from __future__ import annotations

from typing import Any

FLEET_SCHEMA = 1

#: Status fields summed into the fleet totals (absent fields count 0).
_SUMMED_STATUS = ("pool_ready", "pool_target", "served", "failed")

_REQUEST_FAMILY = "repro_service_request_seconds"
_POOL_DEPTH_FAMILY = "repro_service_pool_depth"
_REFILL_FAMILY = "repro_service_pool_refill_seconds"


def _family_samples(
    metrics: dict[str, Any], family: str, shard_id: str, labeled: bool
) -> list[dict[str, Any]]:
    entry = metrics.get(family)
    if not isinstance(entry, dict):
        return []
    samples = entry.get("samples", [])
    if labeled:
        samples = [
            s for s in samples if s.get("labels", {}).get("shard") == shard_id
        ]
    return samples


def _merge_histograms(samples: list[dict[str, Any]]) -> dict[str, Any] | None:
    """Fold histogram samples: counts/sums add, quantiles take the max
    (the upper-bound rule from the module doc)."""
    if not samples:
        return None
    return {
        "count": sum(s.get("count", 0) for s in samples),
        "sum": sum(s.get("sum", 0.0) for s in samples),
        "p50": max(s.get("p50", 0.0) for s in samples),
        "p99": max(s.get("p99", 0.0) for s in samples),
    }


def _request_latency(
    metrics: dict[str, Any], shard_id: str, labeled: bool
) -> dict[str, dict[str, Any]]:
    """Per-kind latency digest from the service request histogram."""
    by_kind: dict[str, list[dict[str, Any]]] = {}
    for sample in _family_samples(metrics, _REQUEST_FAMILY, shard_id, labeled):
        kind = sample.get("labels", {}).get("kind", "")
        by_kind.setdefault(kind, []).append(sample)
    return {
        kind: digest
        for kind in sorted(by_kind)
        if (digest := _merge_histograms(by_kind[kind])) is not None
    }


def shard_digest(
    shard_id: str,
    entry: dict[str, Any],
) -> dict[str, Any]:
    """One shard's row of the fleet view.

    ``entry`` is the router's per-shard record: ``state`` (active /
    draining / retired / down), ``document`` (the shard's OPS dict or
    ``None``), ``error`` (why the document is missing), ``inflight``,
    ``routed_total`` and ``labeled`` (metric scoping, see module doc).
    """
    document = entry.get("document")
    ok = isinstance(document, dict)
    row: dict[str, Any] = {
        "state": entry.get("state", "unknown"),
        "ok": ok,
        "inflight": entry.get("inflight", 0),
        "routed_total": entry.get("routed_total", 0),
    }
    if not ok:
        row["error"] = entry.get("error") or "ops document unavailable"
        return row
    labeled = bool(entry.get("labeled"))
    metrics = document.get("metrics", {})
    row["status"] = document.get("status", {})
    depth_samples = _family_samples(
        metrics, _POOL_DEPTH_FAMILY, shard_id, labeled
    )
    row["pool"] = {
        "depth": sum(s.get("value", 0.0) for s in depth_samples),
        "refill": _merge_histograms(
            _family_samples(metrics, _REFILL_FAMILY, shard_id, labeled)
        ),
    }
    row["requests"] = _request_latency(metrics, shard_id, labeled)
    return row


def merge_fleet(
    entries: dict[str, dict[str, Any]],
    *,
    ring: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The fleet document: per-shard digests + totals + the shard map.

    ``entries`` maps shard id to the per-shard record described in
    :func:`shard_digest`; ``ring`` is ``HashRing.describe()`` (the
    routing map the snapshot is consistent with).
    """
    shards = {sid: shard_digest(sid, entries[sid]) for sid in sorted(entries)}

    states: dict[str, int] = {}
    totals: dict[str, Any] = {field: 0 for field in _SUMMED_STATUS}
    totals["inflight"] = 0
    totals["routed_total"] = 0
    kinds: dict[str, list[dict[str, Any]]] = {}
    down = 0
    for row in shards.values():
        states[row["state"]] = states.get(row["state"], 0) + 1
        totals["routed_total"] += row["routed_total"]
        if not row["ok"]:
            down += 1
            continue
        if row["state"] == "retired":
            continue  # counted above, excluded from live sums
        totals["inflight"] += row["inflight"]
        status = row["status"]
        for field in _SUMMED_STATUS:
            totals[field] += status.get(field, 0)
        for kind, digest in row["requests"].items():
            kinds.setdefault(kind, []).append(digest)

    fleet = {
        "shards": len(shards),
        "down": down,
        "states": {state: states[state] for state in sorted(states)},
        **totals,
        "requests": {
            kind: merged
            for kind in sorted(kinds)
            if (merged := _merge_histograms(kinds[kind])) is not None
        },
    }
    return {
        "schema": FLEET_SCHEMA,
        "ring": ring or {},
        "fleet": fleet,
        "shards": shards,
    }
