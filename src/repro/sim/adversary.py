"""The hybrid-model adversary (§2.2): t-limited Byzantine + f-limited
crash/link failures, static, rushing, with a d(kappa) crash budget.

Responsibilities, matching the paper's assumptions:

* **Corruption** — before the run, the adversary picks up to ``t``
  nodes to corrupt (static adversary).  Protocol layers substitute a
  Byzantine strategy node for each corrupted index.
* **Crash scheduling** — at most ``f`` non-Byzantine nodes are crashed
  at any instant, and at most ``d_budget`` crash events occur over the
  adversary's lifetime (the ``d(kappa)`` bound that makes complexity
  d-uniformly bounded).  Link failures are modelled as crashes of one
  endpoint, per the paper's convention.
* **Scheduling** — the adversary may delay messages, subject to the
  rule that messages between honest uncrashed nodes are delivered; a
  *rushing* adversary sees honest messages before choosing its own,
  modelled by delivering messages to Byzantine recipients with
  near-zero delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class CrashBudgetExceeded(RuntimeError):
    """The adversary attempted more crashes than d(kappa) allows."""


@dataclass
class Adversary:
    """Fault configuration and scheduling policy for one run.

    ``byzantine`` is the static corruption set (|byzantine| <= t);
    ``crash_plan`` is a list of (time, node, up_duration) triples — the
    node crashes at ``time`` and recovers after ``up_duration`` (None
    means it stays down forever).
    """

    t: int
    f: int
    byzantine: frozenset[int] = frozenset()
    crash_plan: list[tuple[float, int, float | None]] = field(default_factory=list)
    d_budget: int = 10
    rushing: bool = True
    rush_delay: float = 1e-6
    # Extra delay applied to messages *sent by* Byzantine nodes, used by
    # E6 to model the adversary holding back its messages to the verge
    # of the honest nodes' timeout.
    byzantine_send_delay: float = 0.0

    def __post_init__(self) -> None:
        if len(self.byzantine) > self.t:
            raise ValueError(
                f"{len(self.byzantine)} corrupt nodes exceeds t={self.t}"
            )
        for _, node, _ in self.crash_plan:
            if node in self.byzantine:
                raise ValueError(
                    "crash plan may only target non-Byzantine nodes; "
                    f"node {node} is corrupted"
                )
        self._validate_crash_plan()

    def _validate_crash_plan(self) -> None:
        """Enforce the f-at-any-instant and d-lifetime crash bounds."""
        if len(self.crash_plan) > self.d_budget:
            raise CrashBudgetExceeded(
                f"{len(self.crash_plan)} crashes exceed d(kappa)={self.d_budget}"
            )
        # Sweep the crash intervals; at no instant may more than f overlap.
        boundaries: list[tuple[float, int]] = []
        for start, _, duration in self.crash_plan:
            boundaries.append((start, +1))
            if duration is not None:
                boundaries.append((start + duration, -1))
        boundaries.sort()
        depth = 0
        for _, delta in boundaries:
            depth += delta
            if depth > self.f:
                raise ValueError(
                    f"crash plan exceeds f={self.f} simultaneous crashes"
                )

    def is_byzantine(self, node: int) -> bool:
        return node in self.byzantine

    def delivery_delay(
        self,
        rng: random.Random,
        sender: int,
        recipient: int,
        base_delay: float,
    ) -> float:
        """Final delay for one message, after adversarial scheduling."""
        if self.rushing and recipient in self.byzantine:
            # Rushing adversary: its nodes see honest traffic "first".
            return self.rush_delay
        if sender in self.byzantine and self.byzantine_send_delay > 0:
            return base_delay + self.byzantine_send_delay
        return base_delay

    @classmethod
    def passive(cls, t: int = 0, f: int = 0) -> "Adversary":
        """No corruptions, no crashes: the fault-free baseline."""
        return cls(t=t, f=f)

    @classmethod
    def crash_only(
        cls,
        t: int,
        f: int,
        crash_plan: list[tuple[float, int, float | None]],
        d_budget: int | None = None,
    ) -> "Adversary":
        """Crash/recovery faults without Byzantine corruption."""
        return cls(
            t=t,
            f=f,
            crash_plan=crash_plan,
            d_budget=d_budget if d_budget is not None else max(10, len(crash_plan)),
        )

    @classmethod
    def corrupting(
        cls,
        t: int,
        f: int,
        byzantine: set[int],
        **kwargs: object,
    ) -> "Adversary":
        """Static Byzantine corruption of the given node set."""
        return cls(t=t, f=f, byzantine=frozenset(byzantine), **kwargs)  # type: ignore[arg-type]
