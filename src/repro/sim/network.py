"""Message payload protocol and delay models for the simulated network.

The paper's communication model (§2.1) is an asynchronous network: the
adversary schedules message delivery, but every message between honest,
uncrashed nodes is eventually delivered.  Delay models capture the
"perfect links between honest nodes" observation — honest traffic gets
small random delays, while an adversary hook may stretch the delays of
traffic it controls (its own nodes' messages) to the verge of timeouts,
which is exactly the E6 experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Payload(Protocol):
    """What the network requires of a message body."""

    @property
    def kind(self) -> str:
        """Short message-type tag used for metrics bucketing."""
        ...

    def byte_size(self) -> int:
        """Serialized size in bytes, used for communication complexity."""
        ...


@dataclass(frozen=True)
class RawPayload:
    """A minimal payload for tests and padding traffic."""

    kind: str
    size: int
    body: Any = None

    def byte_size(self) -> int:
        return self.size


class DelayModel:
    """Base: draws the network delay for one message."""

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        raise NotImplementedError


@dataclass
class ConstantDelay(DelayModel):
    """Every message takes exactly ``delay`` time units."""

    delay: float = 1.0

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        return self.delay


@dataclass
class UniformDelay(DelayModel):
    """Delay drawn uniformly from [low, high] — the default 'Internet'."""

    low: float = 0.5
    high: float = 1.5

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class ExponentialDelay(DelayModel):
    """Heavy-ish tail: min_delay + Exp(mean).  Models congestion spikes."""

    mean: float = 1.0
    min_delay: float = 0.1

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        return self.min_delay + rng.expovariate(1.0 / self.mean)


@dataclass
class PartitionDelay(DelayModel):
    """A temporary network partition that eventually heals (§2.2 models
    partitions via the crash abstraction; this model instead keeps both
    sides alive but stalls cross-partition traffic until ``heal_time`` —
    deliveries are delayed, never lost, preserving the asynchronous
    model's eventual-delivery guarantee).

    Messages within a side use ``base``; messages crossing between
    ``group_a`` and its complement before ``heal_time`` are held until
    shortly after the partition heals.
    """

    group_a: frozenset[int]
    heal_time: float
    base: DelayModel = None  # type: ignore[assignment]
    post_heal_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.base is None:
            self.base = UniformDelay()
        self._clock = 0.0

    def observe_time(self, now: float) -> None:
        """Clock injection — the *only* way time reaches a delay model.

        Every runtime that samples delays (the discrete-event
        ``Simulation`` and the real-socket ``AsyncioTransport``) calls
        this with its current time immediately before each
        :meth:`sample`, so time-dependent models never hold their own
        clock source."""
        self._clock = now

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        normal = self.base.sample(rng, sender, recipient)
        crosses = (sender in self.group_a) != (recipient in self.group_a)
        if not crosses or self._clock >= self.heal_time:
            return normal
        # Held until the partition heals, then delivered with jitter.
        wait = self.heal_time - self._clock
        return wait + rng.uniform(0, self.post_heal_jitter)


@dataclass
class AsymmetricDelay(DelayModel):
    """Per-link base latency matrix entry + jitter; models a WAN where
    node pairs sit at different RTTs (e.g. geo-distributed deployments)."""

    base: dict[tuple[int, int], float]
    jitter: float = 0.2
    default: float = 1.0

    def sample(self, rng: random.Random, sender: int, recipient: int) -> float:
        b = self.base.get((sender, recipient), self.default)
        return b + rng.uniform(0, self.jitter)
