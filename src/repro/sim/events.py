"""Discrete-event core: a deterministic priority queue of timestamped events.

The simulator advances virtual time by popping the earliest event.
Ties are broken by a monotonically increasing sequence number, so runs
are exactly reproducible: the event order is a pure function of the
pushed (time, event) pairs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Event:
    """Base class for all simulator events."""


@dataclass(frozen=True)
class MessageDelivery(Event):
    """A network message arriving at ``recipient``."""

    sender: int
    recipient: int
    payload: Any
    size_bytes: int


@dataclass(frozen=True)
class TimerFired(Event):
    """A timer set by ``node`` with an opaque ``tag`` has expired."""

    node: int
    tag: Any
    timer_id: int


@dataclass(frozen=True)
class OperatorInput(Event):
    """An operator ``in`` message (§7): external input to a node."""

    node: int
    payload: Any


@dataclass(frozen=True)
class CrashNode(Event):
    """Adversary crashes ``node`` (silently; its state freezes)."""

    node: int


@dataclass(frozen=True)
class RecoverNode(Event):
    """``node`` recovers from a crash (well-defined state, §2.2)."""

    node: int


@dataclass
class EventQueue:
    """A deterministic min-heap of (time, seq, event)."""

    _heap: list[tuple[float, int, Event]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)
    now: float = 0.0

    def push(self, time: float, event: Event) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def pop(self) -> tuple[float, Event]:
        """Pop the earliest event and advance ``now`` to its timestamp."""
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        return time, event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
