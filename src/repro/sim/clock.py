"""Weak synchrony timeouts and local phase clocks.

§2.1: liveness (only) rests on the Castro--Liskov assumption that
``delay(t)`` — the time from first transmission to delivery — does not
grow faster than ``t`` indefinitely.  Protocols therefore use timeouts
that *grow* across retries (leader changes), guaranteeing that some
timeout eventually exceeds the true network delay.
:class:`TimeoutPolicy` implements the standard geometric schedule.

§5.1: proactive phases are driven by *local* clock ticks at fixed
intervals; a node waits for ``t`` other nodes' ticks before acting.
:class:`PhaseClock` models the local-tick source.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimeoutPolicy:
    """Geometric timeout schedule: timeout(k) = initial * multiplier**k.

    ``k`` counts how many times this node has already given up on a
    leader in the current session, mirroring PBFT view-change timers.
    The multiplier > 1 realizes "delay(t) does not grow faster than t":
    eventually the timeout exceeds any actual network delay, so an
    honest leader is given enough time to finish.
    """

    initial: float = 20.0
    multiplier: float = 2.0
    cap: float = 10_000.0

    def timeout(self, attempt: int) -> float:
        value = self.initial * (self.multiplier ** attempt)
        return min(value, self.cap)


@dataclass(frozen=True)
class PhaseClock:
    """A local clock ticking at fixed intervals (§5.1).

    ``tick_time(k)`` is when this node's local phase ``k`` begins; the
    per-node ``skew`` models unsynchronized local clocks.
    """

    interval: float
    skew: float = 0.0

    def tick_time(self, phase: int) -> float:
        if phase < 1:
            raise ValueError("phases are numbered from 1")
        return self.skew + phase * self.interval
