"""Canned fault scenarios: reusable builders for adversary schedules.

Benchmarks, tests and the CLI all need the same handful of fault
shapes — a rolling restart, a crash storm against one slot, a targeted
leader assassination, a flaky node.  Building the (time, node,
duration) crash plans by hand is error-prone (the f-overlap and
d-budget rules must hold); these builders construct valid plans by
construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.adversary import Adversary


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, reproducible fault scenario."""

    name: str
    adversary: Adversary
    description: str


def fault_free(t: int, f: int) -> ScenarioSpec:
    """No faults: the optimistic baseline."""
    return ScenarioSpec(
        "fault-free", Adversary.passive(t, f), "no corruptions, no crashes"
    )


def rolling_restart(
    t: int,
    f: int,
    nodes: list[int],
    start: float = 1.0,
    downtime: float = 10.0,
    gap: float = 2.0,
) -> ScenarioSpec:
    """Each listed node crashes and recovers in turn, never overlapping:
    the operational 'rolling upgrade' pattern (requires f >= 1)."""
    if f < 1:
        raise ValueError("rolling restarts need f >= 1")
    plan = []
    at = start
    for node in nodes:
        plan.append((at, node, downtime))
        at += downtime + gap
    return ScenarioSpec(
        f"rolling-restart-{len(nodes)}",
        Adversary.crash_only(t, f, plan, d_budget=max(10, len(plan))),
        f"{len(nodes)} nodes restart serially ({downtime} down, {gap} gap)",
    )


def crash_storm(
    t: int,
    f: int,
    victims: list[int],
    episodes: int,
    seed: int = 0,
    window: float = 100.0,
    downtime: float = 5.0,
) -> ScenarioSpec:
    """Randomized repeated crashes of nodes from ``victims``, packed into
    ``window`` time units, respecting the f-overlap rule by serializing
    episodes (one slot, f >= 1)."""
    if f < 1:
        raise ValueError("crash storms need f >= 1")
    rng = random.Random(("storm", seed).__repr__())
    slot = window / max(episodes, 1)
    if slot <= downtime:
        raise ValueError("window too small for non-overlapping episodes")
    plan = []
    for k in range(episodes):
        node = rng.choice(victims)
        at = k * slot + rng.uniform(0, slot - downtime - 1e-6)
        plan.append((at, node, downtime))
    plan.sort()
    return ScenarioSpec(
        f"crash-storm-{episodes}",
        Adversary.crash_only(t, f, plan, d_budget=max(10, episodes)),
        f"{episodes} randomized crash/recovery episodes in {window} units",
    )


def leader_assassination(
    t: int,
    f: int,
    leaders: list[int],
    timeout: float,
) -> ScenarioSpec:
    """Crash each successive leader just before it can finish its view:
    the worst realistic crash pattern for the pessimistic phase.

    Leaders are crashed permanently one view apart (respecting f by
    recovering the previous victim when the next falls — the paper's
    model allows recovery without rejoining usefully mid-phase)."""
    if f < 1:
        raise ValueError("leader assassination needs f >= 1")
    plan = []
    for k, leader in enumerate(leaders):
        at = 0.5 + k * timeout
        # recover just before the next victim crashes to respect f=1
        plan.append((at, leader, timeout - 0.2))
    return ScenarioSpec(
        f"assassinate-{len(leaders)}-leaders",
        Adversary.crash_only(t, f, plan, d_budget=max(10, len(plan))),
        f"views 0..{len(leaders)-1} lose their leader to a crash",
    )


def flaky_node(
    t: int,
    f: int,
    node: int,
    flaps: int,
    up_time: float = 8.0,
    down_time: float = 3.0,
    start: float = 1.0,
) -> ScenarioSpec:
    """One node repeatedly flapping (crash/recover cycles) — the
    'bad NIC' pattern; §2.2 models a broken link as a crashed endpoint."""
    if f < 1:
        raise ValueError("flaky nodes need f >= 1")
    plan = []
    at = start
    for _ in range(flaps):
        plan.append((at, node, down_time))
        at += down_time + up_time
    return ScenarioSpec(
        f"flaky-node-{node}x{flaps}",
        Adversary.crash_only(t, f, plan, d_budget=max(10, flaps)),
        f"node {node} flaps {flaps} times",
    )
