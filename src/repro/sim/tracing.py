"""Structured simulation traces.

Production distributed systems live and die by their observability; the
simulator therefore supports pluggable *observers* that see every
dispatched event.  :class:`Tracer` is the standard observer: it records
a bounded, queryable timeline of deliveries, timers, crashes and
outputs, renders human-readable transcripts, and computes per-node
timelines — used by tests to assert ordering properties and by humans
to debug protocol runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.events import (
    CrashNode,
    Event,
    MessageDelivery,
    OperatorInput,
    RecoverNode,
    TimerFired,
)


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched event with its timestamp."""

    time: float
    category: str  # deliver | timer | operator | crash | recover | drop
    node: int
    detail: str


def _describe(event: Event) -> tuple[str, int, str]:
    if isinstance(event, MessageDelivery):
        kind = getattr(event.payload, "kind", type(event.payload).__name__)
        return ("deliver", event.recipient, f"{kind} from {event.sender}")
    if isinstance(event, TimerFired):
        return ("timer", event.node, f"tag={event.tag!r}")
    if isinstance(event, OperatorInput):
        kind = getattr(event.payload, "kind", type(event.payload).__name__)
        return ("operator", event.node, kind)
    if isinstance(event, CrashNode):
        return ("crash", event.node, "crashed")
    if isinstance(event, RecoverNode):
        return ("recover", event.node, "recovered")
    return ("other", -1, repr(event))


@dataclass
class Tracer:
    """Bounded in-memory event trace.

    Attach with ``Simulation(...observers=[tracer])`` (or append to
    ``sim.observers``); query with :meth:`records_for`,
    :meth:`of_category`, or render with :meth:`transcript`.
    """

    limit: int = 100_000
    records: list[TraceRecord] = field(default_factory=list)
    dropped: int = 0

    def on_event(self, time: float, event: Event) -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        category, node, detail = _describe(event)
        self.records.append(TraceRecord(time, category, node, detail))

    # -- queries ----------------------------------------------------------------

    def records_for(self, node: int) -> list[TraceRecord]:
        return [r for r in self.records if r.node == node]

    def of_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def first(self, category: str, node: int | None = None) -> TraceRecord | None:
        for record in self.records:
            if record.category == category and (
                node is None or record.node == node
            ):
                return record
        return None

    def transcript(self, limit: int = 50) -> str:
        """A human-readable tail of the trace."""
        lines = [
            f"t={r.time:9.3f}  [{r.category:8s}] node {r.node:3d}  {r.detail}"
            for r in self.records[-limit:]
        ]
        suffix = f"\n... ({self.dropped} dropped)" if self.dropped else ""
        return "\n".join(lines) + suffix

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            out[record.category] = out.get(record.category, 0) + 1
        return out
