"""Deterministic protocol state machines (§7 system design).

The paper describes nodes as deterministic state machines driven by
three message categories: *operator* messages (in/out), *network*
messages, and *timer* messages (start/stop timer).  This module
defines the base class every protocol node extends.

The execution interface is sans-I/O:
:meth:`ProtocolNode.step` consumes one
:class:`~repro.runtime.events.Event` and returns the transition's
:class:`~repro.runtime.effects.Effect` values — nothing inside a
transition touches a queue, a socket or a clock.  The ``on_*`` hooks
below are the protocol's ``upon`` clauses; they receive an
:class:`~repro.runtime.core.EffectRecorder`
(``send``/``set_timer``/``output``...), so clause code reads exactly
like the paper's pseudocode while staying pure.  Drivers — the
discrete-event simulator, the asyncio host, the service forge —
interpret the effects through one shared
:class:`~repro.runtime.driver.MachineDriver`.

``Context`` is re-exported here as an alias of
:class:`~repro.runtime.core.EffectRecorder`: the historical live
callback adapter of that name (bound directly to a transport,
performing effects immediately) is retired, and the clause-hook
annotations keep their established vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runtime.core import EffectRecorder, Env
from repro.runtime.effects import Effect
from repro.runtime.events import (
    Crashed,
    Event,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)

# The name protocol clause signatures are written against.  One release
# ago this was a live adapter performing effects against a transport;
# the recorder has the identical surface, so the alias keeps every
# ``ctx: Context`` annotation accurate.
Context = EffectRecorder


@dataclass
class OutputRecord:
    """An operator ``out`` message emitted by a node."""

    node: int
    time: float
    payload: Any


@dataclass
class ProtocolNode:
    """Base class for all protocol state machines.

    Subclasses override the ``on_*`` clause hooks.  State lives in
    instance attributes and persists across crash/recovery (stable
    storage), while in-flight messages during a crash are lost — the
    hybrid-model semantics of §2.2.

    :meth:`step` is the uniform sans-I/O execution interface: it
    dispatches the event to the matching clause with a recording
    context and returns the effects the clause produced.
    """

    node_id: int

    def step(self, event: Event, env: Env) -> list[Effect]:
        """Consume one event; return the transition's effects.

        Machine-local timer ids persist on the instance so that
        ``set_timer``/``cancel_timer`` correlate across transitions —
        and identically across drivers and replays.
        """
        recorder = EffectRecorder(env, getattr(self, "_next_timer_id", 1))
        if isinstance(event, MessageReceived):
            self.on_message(event.sender, event.payload, recorder)
        elif isinstance(event, TimerFired):
            self.on_timer(event.tag, recorder)
        elif isinstance(event, OperatorInput):
            self.on_operator(event.payload, recorder)
        elif isinstance(event, Crashed):
            self.on_crash()
        elif isinstance(event, Recovered):
            self.on_recover(recorder)
        else:
            raise TypeError(f"unknown event {event!r}")
        self._next_timer_id = recorder.next_timer_id
        return recorder.effects

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        """Handle a network message."""

    def on_timer(self, tag: Any, ctx: Context) -> None:
        """Handle an expired timer."""

    def on_operator(self, payload: Any, ctx: Context) -> None:
        """Handle an operator ``in`` message."""

    def on_crash(self) -> None:
        """Called when the adversary crashes this node."""

    def on_recover(self, ctx: Context) -> None:
        """Called when this node recovers (may send recover messages)."""


@dataclass
class RecordingNode(ProtocolNode):
    """A trivial node that logs everything it receives — used by
    simulator unit tests and as a sink in partial deployments."""

    received: list[tuple[float, int, Any]] = field(default_factory=list)
    timers: list[tuple[float, Any]] = field(default_factory=list)
    recovered_at: list[float] = field(default_factory=list)

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        self.received.append((ctx.now, sender, payload))

    def on_timer(self, tag: Any, ctx: Context) -> None:
        self.timers.append((ctx.now, tag))

    def on_recover(self, ctx: Context) -> None:
        self.recovered_at.append(ctx.now)
