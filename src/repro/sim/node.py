"""Deterministic protocol state machines (§7 system design).

The paper describes nodes as deterministic state machines driven by
three message categories: *operator* messages (in/out), *network*
messages, and *timer* messages (start/stop timer).  This module
defines the base class every protocol node extends.

The execution interface is sans-I/O:
:meth:`ProtocolNode.step` consumes one
:class:`~repro.runtime.events.Event` and returns the transition's
:class:`~repro.runtime.effects.Effect` values — nothing inside a
transition touches a queue, a socket or a clock.  The ``on_*`` hooks
below are the protocol's ``upon`` clauses; they receive an
:class:`~repro.runtime.core.EffectRecorder` whose surface matches the
historical :class:`Context` (``send``/``set_timer``/``output``...), so
clause code reads exactly like the paper's pseudocode while staying
pure.  Drivers — the discrete-event simulator, the asyncio host, the
service forge — interpret the effects through one shared
:class:`~repro.runtime.driver.MachineDriver`.

:class:`Context` is the legacy callback adapter kept one release for
external callers: the same surface bound to a live
:class:`~repro.net.transport.Transport`, performing effects
immediately instead of recording them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.runtime.core import EffectRecorder, Env
from repro.runtime.effects import Effect
from repro.runtime.events import (
    Crashed,
    Event,
    MessageReceived,
    OperatorInput,
    Recovered,
    TimerFired,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.transport import Transport


@dataclass
class OutputRecord:
    """An operator ``out`` message emitted by a node."""

    node: int
    time: float
    payload: Any


class Context:
    """A node's window onto its runtime: effects and environment.

    ``transport`` is anything implementing the narrow
    :class:`~repro.net.transport.Transport` protocol — the simulation
    runner satisfies it structurally, so existing call sites passing a
    :class:`~repro.sim.runner.Simulation` are unchanged.
    """

    def __init__(self, transport: "Transport", node_id: int):
        self._transport = transport
        self.node_id = node_id

    @property
    def now(self) -> float:
        return self._transport.current_time()

    @property
    def rng(self) -> random.Random:
        return self._transport.node_rng(self.node_id)

    @property
    def n(self) -> int:
        return len(self._transport.member_ids())

    @property
    def all_nodes(self) -> list[int]:
        return self._transport.member_ids()

    def send(self, recipient: int, payload: Any) -> None:
        """Send a network message (metered, delivered per the transport)."""
        self._transport.enqueue_message(self.node_id, recipient, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Send ``payload`` to every node (n point-to-point messages —
        the paper has no broadcast channel; this is sugar for a loop)."""
        for recipient in self.all_nodes:
            if recipient == self.node_id and not include_self:
                continue
            self.send(recipient, payload)

    def set_timer(self, delay: float, tag: Any) -> int:
        """Start a timer; returns an id usable with :meth:`cancel_timer`."""
        return self._transport.set_timer(self.node_id, delay, tag)

    def cancel_timer(self, timer_id: int) -> None:
        self._transport.cancel_timer(self.node_id, timer_id)

    def output(self, payload: Any) -> None:
        """Emit an operator ``out`` message (protocol result)."""
        self._transport.record_output(self.node_id, payload)

    def record_leader_change(self) -> None:
        """Count one leader change in the run's metrics (DKG Fig. 3)."""
        self._transport.record_leader_change()


@dataclass
class ProtocolNode:
    """Base class for all protocol state machines.

    Subclasses override the ``on_*`` clause hooks.  State lives in
    instance attributes and persists across crash/recovery (stable
    storage), while in-flight messages during a crash are lost — the
    hybrid-model semantics of §2.2.

    :meth:`step` is the uniform sans-I/O execution interface: it
    dispatches the event to the matching clause with a recording
    context and returns the effects the clause produced.
    """

    node_id: int

    def step(self, event: Event, env: Env) -> list[Effect]:
        """Consume one event; return the transition's effects.

        Machine-local timer ids persist on the instance so that
        ``set_timer``/``cancel_timer`` correlate across transitions —
        and identically across drivers and replays.
        """
        recorder = EffectRecorder(env, getattr(self, "_next_timer_id", 1))
        if isinstance(event, MessageReceived):
            self.on_message(event.sender, event.payload, recorder)
        elif isinstance(event, TimerFired):
            self.on_timer(event.tag, recorder)
        elif isinstance(event, OperatorInput):
            self.on_operator(event.payload, recorder)
        elif isinstance(event, Crashed):
            self.on_crash()
        elif isinstance(event, Recovered):
            self.on_recover(recorder)
        else:
            raise TypeError(f"unknown event {event!r}")
        self._next_timer_id = recorder.next_timer_id
        return recorder.effects

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        """Handle a network message."""

    def on_timer(self, tag: Any, ctx: Context) -> None:
        """Handle an expired timer."""

    def on_operator(self, payload: Any, ctx: Context) -> None:
        """Handle an operator ``in`` message."""

    def on_crash(self) -> None:
        """Called when the adversary crashes this node."""

    def on_recover(self, ctx: Context) -> None:
        """Called when this node recovers (may send recover messages)."""


@dataclass
class RecordingNode(ProtocolNode):
    """A trivial node that logs everything it receives — used by
    simulator unit tests and as a sink in partial deployments."""

    received: list[tuple[float, int, Any]] = field(default_factory=list)
    timers: list[tuple[float, Any]] = field(default_factory=list)
    recovered_at: list[float] = field(default_factory=list)

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        self.received.append((ctx.now, sender, payload))

    def on_timer(self, tag: Any, ctx: Context) -> None:
        self.timers.append((ctx.now, tag))

    def on_recover(self, ctx: Context) -> None:
        self.recovered_at.append(ctx.now)
