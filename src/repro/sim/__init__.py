"""Deterministic discrete-event simulator implementing the paper's
hybrid system model (§2): asynchronous message delivery with adversarial
scheduling, t-limited Byzantine corruption, f-limited crash/link
failures with a d(kappa) lifetime budget, weak-synchrony timers, and a
simulated PKI."""

from repro.sim.adversary import Adversary, CrashBudgetExceeded
from repro.sim.clock import PhaseClock, TimeoutPolicy
from repro.sim.events import (
    CrashNode,
    Event,
    EventQueue,
    MessageDelivery,
    OperatorInput,
    RecoverNode,
    TimerFired,
)
from repro.sim.metrics import Metrics
from repro.sim.network import (
    AsymmetricDelay,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    PartitionDelay,
    Payload,
    RawPayload,
    UniformDelay,
)
from repro.sim.scenarios import (
    ScenarioSpec,
    crash_storm,
    fault_free,
    flaky_node,
    leader_assassination,
    rolling_restart,
)
from repro.sim.tracing import TraceRecord, Tracer
from repro.sim.node import Context, OutputRecord, ProtocolNode, RecordingNode
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation

__all__ = [
    "Adversary",
    "AsymmetricDelay",
    "CertificateAuthority",
    "ConstantDelay",
    "Context",
    "CrashBudgetExceeded",
    "CrashNode",
    "DelayModel",
    "Event",
    "EventQueue",
    "ExponentialDelay",
    "KeyStore",
    "MessageDelivery",
    "Metrics",
    "OperatorInput",
    "OutputRecord",
    "PartitionDelay",
    "Payload",
    "PhaseClock",
    "ProtocolNode",
    "RawPayload",
    "RecordingNode",
    "RecoverNode",
    "ScenarioSpec",
    "Simulation",
    "TimeoutPolicy",
    "TraceRecord",
    "Tracer",
    "UniformDelay",
    "crash_storm",
    "fault_free",
    "flaky_node",
    "leader_assassination",
    "rolling_restart",
]
