"""Simulated PKI (§2.3): certificate registry + authenticated channels.

The paper assumes a CA-rooted PKI: every node has a unique index and a
certificate binding it to a signature public key; all protocol traffic
runs over TLS.  In the simulator:

* TLS confidentiality/authenticity of point-to-point links is modelled
  by construction — the network only delivers a message to its intended
  recipient and attributes it to its true sender, and Byzantine nodes
  cannot forge the ``sender`` field;
* message *signatures* (needed because signed echo/ready/lead-ch
  messages are forwarded to third parties, where channel security does
  not help) are real Schnorr signatures verified against this registry;
* proactive reboot (§5.1) rotates a node's key: the old certificate is
  revoked and a new key registered, exactly as the paper prescribes for
  recovering nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.groups import SchnorrGroup
from repro.crypto.schnorr import Signature, SigningKey, verify


@dataclass
class Certificate:
    """Binding of a node index to its current signature public key."""

    node: int
    public_key: int
    serial: int
    revoked: bool = False


@dataclass
class CertificateAuthority:
    """The external CA: issues, looks up and revokes node certificates."""

    group: SchnorrGroup
    _certs: dict[int, Certificate] = field(default_factory=dict)
    _serial: int = 0
    _revoked: list[Certificate] = field(default_factory=list)

    def issue(self, node: int, public_key: int) -> Certificate:
        """Issue a certificate for ``node``, revoking any previous one."""
        if node in self._certs:
            self.revoke(node)
        self._serial += 1
        cert = Certificate(node, public_key, self._serial)
        self._certs[node] = cert
        return cert

    def revoke(self, node: int) -> None:
        cert = self._certs.pop(node, None)
        if cert is not None:
            cert.revoked = True
            self._revoked.append(cert)

    def public_key_of(self, node: int) -> int | None:
        cert = self._certs.get(node)
        return cert.public_key if cert else None

    def verify(self, node: int, message: bytes, sig: Signature) -> bool:
        """Verify a signature against the node's *current* certificate."""
        public_key = self.public_key_of(node)
        if public_key is None:
            return False
        return verify(self.group, public_key, message, sig)

    @property
    def revocation_list(self) -> list[Certificate]:
        return list(self._revoked)


@dataclass
class KeyStore:
    """A node's long-term signing key plus a handle on the CA."""

    node: int
    signing_key: SigningKey
    ca: CertificateAuthority

    @classmethod
    def enroll(
        cls,
        node: int,
        ca: CertificateAuthority,
        rng: random.Random,
    ) -> "KeyStore":
        key = SigningKey.generate(ca.group, rng)
        ca.issue(node, key.public_key)
        return cls(node, key, ca)

    def sign(self, message: bytes, rng: random.Random) -> Signature:
        return self.signing_key.sign(message, rng)

    def rotate(self, rng: random.Random) -> None:
        """Proactive reboot key rotation: revoke + re-issue (§5.1)."""
        self.signing_key = SigningKey.generate(self.ca.group, rng)
        self.ca.issue(self.node, self.signing_key.public_key)
