"""The simulation runner: a discrete-event driver for protocol machines.

A :class:`Simulation` is a deterministic function of (machines, delay
model, adversary, seed).  It owns the event queue; each queued
happening is translated into a sans-I/O
:class:`~repro.runtime.events.Event`, stepped through the owning
machine via a shared :class:`~repro.runtime.driver.MachineDriver`, and
the returned effects are interpreted against this class's
:class:`~repro.net.transport.Transport` surface (message enqueue with
sampled delays, timers on the virtual clock, output records).  The
identical driver interprets the identical machines over real asyncio
TCP (:class:`~repro.net.host.NodeHost`) — the simulator is just the
deterministic backend.

Protocol layers build a simulation, inject operator inputs, call
:meth:`Simulation.run`, and read results from
:attr:`Simulation.outputs` and :attr:`Simulation.metrics`.  Any object
with a ``node_id`` and a ``step(event, env)`` is a valid node — plain
:class:`~repro.sim.node.ProtocolNode` subclasses and whole
:class:`~repro.runtime.runtime.ProtocolRuntime` endpoints alike (the
latter is how many concurrent protocol sessions share one simulated
node identity).
"""

from __future__ import annotations

import random
from typing import Any

from repro.runtime.driver import MachineDriver
from repro.runtime.envelope import SessionEnvelope
from repro.sim.adversary import Adversary
from repro.sim.events import (
    CrashNode,
    EventQueue,
    MessageDelivery,
    OperatorInput,
    RecoverNode,
    TimerFired,
)
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.node import OutputRecord, ProtocolNode


class Simulation:
    """A deterministic discrete-event run of a set of protocol nodes."""

    def __init__(
        self,
        nodes: dict[int, ProtocolNode] | None = None,
        delay_model: DelayModel | None = None,
        adversary: Adversary | None = None,
        seed: int = 0,
        observers: list | None = None,
    ):
        self.queue = EventQueue()
        self.metrics = Metrics()
        # Observers see every dispatched event (see repro.sim.tracing).
        self.observers = list(observers or [])
        self.nodes: dict[int, ProtocolNode] = {}
        self._drivers: dict[int, MachineDriver] = {}
        self.delay_model = delay_model or UniformDelay()
        self.adversary = adversary or Adversary.passive()
        self.seed = seed
        self.outputs: list[OutputRecord] = []
        self.crashed: set[int] = set()
        self._net_rng = random.Random(("net", seed).__repr__())
        self._node_rngs: dict[int, random.Random] = {}
        self._timer_ids = iter(range(1, 1 << 62))
        self._cancelled_timers: set[int] = set()
        self._events_processed = 0
        self._schedule_crash_plan()
        for node in (nodes or {}).values():
            self.add_node(node)

    # -- construction --------------------------------------------------------

    def add_node(self, node: Any) -> None:
        """Register a machine (anything with ``node_id`` and ``step``)."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        self._drivers[node.node_id] = MachineDriver(node, self, node.node_id)

    def node_rng(self, node_id: int) -> random.Random:
        """A per-node RNG derived deterministically from the seed."""
        if node_id not in self._node_rngs:
            self._node_rngs[node_id] = random.Random(
                ("node", self.seed, node_id).__repr__()
            )
        return self._node_rngs[node_id]

    # -- Transport protocol surface (repro.net.transport.Transport) ----------

    def current_time(self) -> float:
        """Simulated clock reading (Transport protocol)."""
        return self.queue.now

    def member_ids(self) -> list[int]:
        """Deployment membership (Transport protocol)."""
        return sorted(self.nodes)

    def record_leader_change(self) -> None:
        """Meter one DKG leader change (Transport protocol)."""
        self.metrics.record_leader_change()

    def _schedule_crash_plan(self) -> None:
        for time, node, up_duration in self.adversary.crash_plan:
            self.queue.push(time, CrashNode(node))
            if up_duration is not None:
                self.queue.push(time + up_duration, RecoverNode(node))

    # -- effects interpreted by MachineDriver ----------------------------------

    def enqueue_message(self, sender: int, recipient: int, payload: Any) -> None:
        if recipient not in self.nodes:
            raise KeyError(f"unknown recipient {recipient}")
        # Meter the protocol message, not the envelope wrapper (the
        # session id is transport framing), so per-kind/per-byte
        # accounting is identical with and without multiplexing — and
        # identical to the real transport's accounting (E12).
        metered = (
            payload.payload if isinstance(payload, SessionEnvelope) else payload
        )
        size = metered.byte_size()
        self.metrics.record_send(sender, metered.kind, size)
        observe = getattr(self.delay_model, "observe_time", None)
        if observe is not None:
            observe(self.queue.now)
        base = self.delay_model.sample(self._net_rng, sender, recipient)
        delay = self.adversary.delivery_delay(self._net_rng, sender, recipient, base)
        self.queue.push(
            self.queue.now + delay,
            MessageDelivery(sender, recipient, payload, size),
        )

    def set_timer(self, node: int, delay: float, tag: Any) -> int:
        timer_id = next(self._timer_ids)
        self.metrics.record_timer_set()
        self.queue.push(self.queue.now + delay, TimerFired(node, tag, timer_id))
        return timer_id

    def cancel_timer(self, node: int, timer_id: int) -> None:
        self._cancelled_timers.add(timer_id)

    def record_output(self, node: int, payload: Any) -> None:
        record = OutputRecord(node, self.queue.now, payload)
        self.outputs.append(record)
        self.metrics.record_completion(node, self.queue.now)

    # -- external inputs -------------------------------------------------------

    def inject(self, node: int, payload: Any, at: float | None = None) -> None:
        """Schedule an operator ``in`` message for ``node``."""
        self.queue.push(
            at if at is not None else self.queue.now, OperatorInput(node, payload)
        )

    def crash(self, node: int, at: float) -> None:
        """Manually schedule a crash (bench/test convenience)."""
        self.queue.push(at, CrashNode(node))

    def recover(self, node: int, at: float) -> None:
        self.queue.push(at, RecoverNode(node))

    # -- main loop --------------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        max_events: int | None = 2_000_000,
    ) -> None:
        """Process events until quiescence, ``until``, or ``max_events``."""
        while self.queue:
            if max_events is not None and self._events_processed >= max_events:
                raise RuntimeError(
                    f"event budget {max_events} exhausted at t={self.queue.now:.2f} "
                    "(possible livelock)"
                )
            next_time = self.queue._heap[0][0]
            if until is not None and next_time > until:
                self.queue.now = until
                return
            time, event = self.queue.pop()
            self._events_processed += 1
            for observer in self.observers:
                observer.on_event(time, event)
            self._dispatch(event)

    def _dispatch(self, event: Any) -> None:
        """Translate a queued happening into a machine event, step the
        owning machine through the shared driver, and let the driver
        interpret the returned effects against this simulation."""
        if isinstance(event, MessageDelivery):
            if event.recipient in self.crashed:
                # §2.2: a crashed node's links are down; in-flight
                # messages to it are lost (recovered later via help).
                self.metrics.record_drop()
                return
            self._drivers[event.recipient].handle_message(
                event.sender, event.payload
            )
        elif isinstance(event, TimerFired):
            if event.timer_id in self._cancelled_timers:
                self._cancelled_timers.discard(event.timer_id)
                return
            if event.node in self.crashed:
                return
            self._drivers[event.node].handle_timer(event.timer_id, event.tag)
        elif isinstance(event, OperatorInput):
            if event.node in self.crashed:
                return
            self._drivers[event.node].handle_operator(event.payload)
        elif isinstance(event, CrashNode):
            if event.node not in self.crashed:
                self.crashed.add(event.node)
                self.metrics.record_crash()
                self._drivers[event.node].handle_crash()
        elif isinstance(event, RecoverNode):
            if event.node in self.crashed:
                self.crashed.discard(event.node)
                self.metrics.record_recovery()
                self._drivers[event.node].handle_recover()
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {event!r}")

    # -- result helpers -----------------------------------------------------------

    def outputs_for(self, node: int) -> list[OutputRecord]:
        return [o for o in self.outputs if o.node == node]

    def outputs_of_kind(self, kind: str) -> list[OutputRecord]:
        """Outputs whose payload has the given ``kind`` attribute."""
        return [
            o for o in self.outputs if getattr(o.payload, "kind", None) == kind
        ]
