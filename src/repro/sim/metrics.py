"""Measurement of the quantities the paper's evaluation reasons about.

The paper's efficiency claims (§3, §4) are stated in terms of

* **message complexity** — the number of messages transferred, and
* **communication complexity** — the total bit length of messages,

plus counts of recoveries and leader changes.  Every send passes
through :class:`Metrics`, which tallies both, bucketed by message kind,
so benchmarks can print per-kind breakdowns (e.g. echo vs. ready vs.
recovery traffic) next to the paper's asymptotic bounds.

The tallies stay plain attributes — a simulated run records millions of
sends, and attribute increments are the cheapest thing python does —
but the class is rebased onto the :mod:`repro.obs.metrics` schema for
exposition: :meth:`publish` writes the run's totals into any registry
under the ``repro_run_*`` metric family, and :meth:`snapshot` /
:meth:`render_text` render that family standalone, so a simulator run
and a live TCP deployment report through one schema.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry


@dataclass
class Metrics:
    """Counters for one simulation run."""

    messages_total: int = 0
    bytes_total: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    deliveries_dropped: int = 0
    crashes: int = 0
    recoveries: int = 0
    leader_changes: int = 0
    timers_set: int = 0
    completion_times: dict[int, float] = field(default_factory=dict)

    def record_send(self, sender: int, kind: str, size_bytes: int) -> None:
        self.messages_total += 1
        self.bytes_total += size_bytes
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size_bytes
        self.messages_by_sender[sender] += 1

    def record_drop(self) -> None:
        self.deliveries_dropped += 1

    def record_crash(self) -> None:
        self.crashes += 1

    def record_recovery(self) -> None:
        self.recoveries += 1

    def record_leader_change(self) -> None:
        self.leader_changes += 1

    def record_timer_set(self) -> None:
        self.timers_set += 1

    def record_completion(self, node: int, time: float) -> None:
        # Keep the first completion time per node.
        self.completion_times.setdefault(node, time)

    @property
    def last_completion(self) -> float | None:
        """Time at which the slowest completing node finished, if any."""
        if not self.completion_times:
            return None
        return max(self.completion_times.values())

    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot convenient for bench table rows."""
        return {
            "messages": self.messages_total,
            "bytes": self.bytes_total,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "leader_changes": self.leader_changes,
            "completed_nodes": len(self.completion_times),
            "last_completion": self.last_completion,
        }

    # -- unified obs schema ----------------------------------------------------

    def publish(self, reg: MetricsRegistry) -> None:
        """Write this run's totals into ``reg`` as ``repro_run_*``."""
        for kind in sorted(self.messages_by_kind):
            reg.counter(
                "repro_run_messages_total",
                "protocol messages sent, by wire kind",
                kind=kind,
            ).set_total(self.messages_by_kind[kind])
            reg.counter(
                "repro_run_bytes_total",
                "protocol bytes sent, by wire kind",
                kind=kind,
            ).set_total(self.bytes_by_kind[kind])
        pairs = (
            ("repro_run_drops_total", self.deliveries_dropped, "deliveries dropped"),
            ("repro_run_crashes_total", self.crashes, "node crashes"),
            ("repro_run_recoveries_total", self.recoveries, "node recoveries"),
            (
                "repro_run_leader_changes_total",
                self.leader_changes,
                "DKG leader changes",
            ),
            ("repro_run_timers_set_total", self.timers_set, "timers armed"),
            (
                "repro_run_completions_total",
                len(self.completion_times),
                "nodes that reached a protocol output",
            ),
        )
        for name, value, help_text in pairs:
            reg.counter(name, help_text).set_total(value)
        if self.completion_times:
            reg.gauge(
                "repro_run_last_completion_time",
                "virtual time of the slowest completion",
            ).set(self.last_completion)

    def snapshot(self) -> dict[str, object]:
        """This run's totals in the registry snapshot schema."""
        reg = MetricsRegistry()
        self.publish(reg)
        return reg.snapshot(collect=False)

    def render_text(self) -> str:
        """This run's totals in Prometheus text exposition."""
        reg = MetricsRegistry()
        self.publish(reg)
        return reg.render_text(collect=False)
