"""Measurement of the quantities the paper's evaluation reasons about.

The paper's efficiency claims (§3, §4) are stated in terms of

* **message complexity** — the number of messages transferred, and
* **communication complexity** — the total bit length of messages,

plus counts of recoveries and leader changes.  Every send passes
through :class:`Metrics`, which tallies both, bucketed by message kind,
so benchmarks can print per-kind breakdowns (e.g. echo vs. ready vs.
recovery traffic) next to the paper's asymptotic bounds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters for one simulation run."""

    messages_total: int = 0
    bytes_total: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_sender: Counter = field(default_factory=Counter)
    deliveries_dropped: int = 0
    crashes: int = 0
    recoveries: int = 0
    leader_changes: int = 0
    timers_set: int = 0
    completion_times: dict[int, float] = field(default_factory=dict)

    def record_send(self, sender: int, kind: str, size_bytes: int) -> None:
        self.messages_total += 1
        self.bytes_total += size_bytes
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size_bytes
        self.messages_by_sender[sender] += 1

    def record_drop(self) -> None:
        self.deliveries_dropped += 1

    def record_crash(self) -> None:
        self.crashes += 1

    def record_recovery(self) -> None:
        self.recoveries += 1

    def record_leader_change(self) -> None:
        self.leader_changes += 1

    def record_completion(self, node: int, time: float) -> None:
        # Keep the first completion time per node.
        self.completion_times.setdefault(node, time)

    @property
    def last_completion(self) -> float | None:
        """Time at which the slowest completing node finished, if any."""
        if not self.completion_times:
            return None
        return max(self.completion_times.values())

    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot convenient for bench table rows."""
        return {
            "messages": self.messages_total,
            "bytes": self.bytes_total,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "leader_changes": self.leader_changes,
            "completed_nodes": len(self.completion_times),
            "last_completion": self.last_completion,
        }
