"""HybridVSS message types (Fig. 1) and session identifiers.

A session is identified by ``(P_d, tau)`` — dealer index plus a counter
(§3).  Message sizes follow the paper's accounting: the dominant cost
is the commitment matrix ``C`` with O(n^2) entries; the commitment
*codec* (full matrix vs. Cachin-style hash compression) decides how
many bytes each message kind is charged for carrying ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.crypto.feldman import FeldmanCommitment
from repro.crypto.polynomials import Polynomial
from repro.crypto.schnorr import Signature

SESSION_ID_BYTES = 8  # dealer index + counter, packed
INDEX_BYTES = 2
# Fixed per-frame framing cost of the binary codec: 4-byte length
# prefix + 2-byte magic + version + kind (repro.net.wire asserts the
# two stay in sync).  Messages with a ``size`` field are stamped with
# their full frame length; fixed-size messages add this themselves.
WIRE_FRAME_OVERHEAD = 8


@dataclass(frozen=True)
class SessionId:
    """Unique VSS session identifier (P_d, tau)."""

    dealer: int
    tau: int

    def as_bytes(self) -> bytes:
        return self.dealer.to_bytes(4, "big") + self.tau.to_bytes(4, "big")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(P{self.dealer},{self.tau})"


@dataclass(frozen=True)
class SendMsg:
    """Dealer -> P_j: the commitment C and row polynomial a_j = f(j, .).

    ``poly`` is None when a recovering node retransmits from its B set
    during share renewal, where §5.2 mandates that only commitments be
    resent (the univariate polynomials were erased)."""

    session: SessionId
    commitment: FeldmanCommitment
    poly: Polynomial | None
    size: int = field(compare=False, default=0)

    kind = "vss.send"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class EchoMsg:
    """P_i -> P_j: the point alpha = f(i, j) under commitment C."""

    session: SessionId
    commitment: FeldmanCommitment
    point: int
    size: int = field(compare=False, default=0)

    kind = "vss.echo"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class ReadyMsg:
    """P_i -> P_j: a ready point, optionally signed (extended-HybridVSS).

    The signature covers (session, digest(C)) so a third party — the
    DKG leader's audience — can verify that the signer voted ready for
    exactly this commitment (§4, sets R_d)."""

    session: SessionId
    commitment: FeldmanCommitment
    point: int
    signature: Signature | None = None
    size: int = field(compare=False, default=0)

    kind = "vss.ready"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class HelpMsg:
    """Recovering node -> all: please retransmit your B_l for me."""

    session: SessionId

    kind = "vss.help"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + SESSION_ID_BYTES


@dataclass(frozen=True)
class SharePointMsg:
    """Rec protocol: P_m -> all: my share s_m = f(m, 0)."""

    session: SessionId
    point: int
    size: int = field(compare=False, default=0)

    kind = "vss.rec-share"

    def byte_size(self) -> int:
        return self.size


VssMessage = Union[SendMsg, EchoMsg, ReadyMsg, HelpMsg, SharePointMsg]


# -- operator messages (in/out, §7) -------------------------------------------


@dataclass(frozen=True)
class ShareInput:
    """(P_d, tau, in, share, s): operator tells the dealer to share s."""

    session: SessionId
    secret: int

    kind = "vss.in.share"


@dataclass(frozen=True)
class ReconstructInput:
    """(P_d, tau, in, reconstruct): operator starts Rec at this node."""

    session: SessionId

    kind = "vss.in.reconstruct"


@dataclass(frozen=True)
class RecoverInput:
    """(P_d, tau, in, recover): operator-triggered recovery."""

    session: SessionId

    kind = "vss.in.recover"


@dataclass(frozen=True)
class ReadyWitness:
    """One signed ready vote: (signer index, signature over session+digest)."""

    signer: int
    signature: Signature


@dataclass(frozen=True)
class SharedOutput:
    """(P_d, tau, out, shared, C, s_i) — plus the signed ready set R_d
    when running as extended-HybridVSS inside the DKG."""

    session: SessionId
    commitment: FeldmanCommitment
    share: int
    ready_proof: tuple[ReadyWitness, ...] = ()

    kind = "vss.out.shared"


@dataclass(frozen=True)
class ReconstructedOutput:
    """(P_d, tau, out, reconstructed, z_i)."""

    session: SessionId
    value: int

    kind = "vss.out.reconstructed"


def ready_signing_bytes(session: SessionId, commitment_digest: bytes) -> bytes:
    """Canonical byte string signed in extended-HybridVSS ready messages."""
    return b"vss-ready|" + session.as_bytes() + b"|" + commitment_digest
