"""The HybridVSS state machine: protocol Sh (Fig. 1) and protocol Rec.

:class:`VssSession` is one node's view of one session ``(P_d, tau)``.
It is written as a sub-state-machine (not a full
:class:`~repro.sim.node.ProtocolNode`) so that a DKG node can host
``n`` concurrent sessions; :mod:`repro.vss.node` wraps a single session
for standalone use.

The implementation mirrors Fig. 1 ``upon``-clause by ``upon``-clause;
comments quote the pseudocode lines being implemented.  The *extended*
mode (§4) additionally signs ready messages and hands the completed
session an ``R_d`` proof set of ``n - t - f`` signed ready witnesses,
which the DKG leader uses to justify its proposal.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.hashing import commitment_digest
from repro.crypto.polynomials import Polynomial, interpolate_polynomial
from repro.crypto.schnorr import Signature
from repro.crypto.shares import PointCollector, reconstruct_raw
from repro.sim.node import Context
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.vss.config import VssConfig
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    ReadyWitness,
    ReconstructedOutput,
    SendMsg,
    SessionId,
    SharedOutput,
    SharePointMsg,
    ready_signing_bytes,
)


# Wire-size memo shared by all sessions: frame lengths are value-
# independent given (kind, commitment shape, group, codec), so one
# encode prices every message of that shape in the whole process.
_SIZE_CACHE: dict[tuple, int] = {}


@dataclass
class _PerCommitmentState:
    """Counters and point set A_C for one candidate commitment C.

    Incoming echo/ready points are *buffered* unverified and checked in
    one randomized-linear-combination batch when the buffered total
    would cross a Fig. 1 decision threshold — a whole wave of points
    against one commitment costs one multiexp instead of one O(t)
    verification per message.  ``echo_count``/``ready_count`` only ever
    count *verified* points (as in Fig. 1); bad points are pinpointed
    by the batch fallback and dropped, so a Byzantine sender degrades
    the batch back to per-item checks but cannot stall progress.
    """

    points: dict[int, int] = field(default_factory=dict)  # m -> alpha = f(m, i)
    pending_echo: dict[int, int] = field(default_factory=dict)
    pending_ready: dict[int, int] = field(default_factory=dict)
    pending_witness: dict[int, ReadyWitness] = field(default_factory=dict)
    echo_count: int = 0
    ready_count: int = 0
    echo_seen: set[int] = field(default_factory=set)
    ready_seen: set[int] = field(default_factory=set)
    row_poly: Polynomial | None = None
    sent_ready: bool = False
    ready_witnesses: dict[int, ReadyWitness] = field(default_factory=dict)
    point_verifier: FeldmanVector | None = None


class VssSession:
    """One node's instance of HybridVSS for session (P_d, tau)."""

    def __init__(
        self,
        config: VssConfig,
        me: int,
        session: SessionId,
        on_shared: Callable[[SharedOutput], None],
        on_reconstructed: Callable[[ReconstructedOutput], None] | None = None,
        keystore: KeyStore | None = None,
        ca: CertificateAuthority | None = None,
        sign_ready: bool = False,
        rng: random.Random | None = None,
        expected_secret_commitment: int | None = None,
    ):
        if me not in config.indices:
            raise ValueError(f"node index {me} is not a deployment member")
        self.config = config
        self.me = me
        self.session = session
        self.on_shared = on_shared
        self.on_reconstructed = on_reconstructed or (lambda _out: None)
        self.keystore = keystore
        self.ca = ca
        self.sign_ready = sign_ready
        # Share renewal / node addition (§5.2, §6.2): the dealer is
        # resharing a value whose public commitment g^{s_d} is already
        # known; a send whose C commits to anything else is rejected.
        self.expected_secret_commitment = expected_secret_commitment
        if sign_ready and (keystore is None or ca is None):
            raise ValueError("extended mode requires a keystore and CA")
        self.rng = rng or random.Random(
            ("vss", session.dealer, session.tau, me).__repr__()
        )

        # upon initialization: for all C: A_C <- {}; e_C <- 0; r_C <- 0
        self._per_c: dict[FeldmanCommitment, _PerCommitmentState] = {}
        # c <- 0; c_l <- 0 for all l
        self._help_total = 0
        self._help_from: dict[int, int] = {}
        # B: outgoing message log for crash recovery, keyed by recipient
        self._b_log: dict[int, list[Any]] = {i: [] for i in config.indices}
        self._seen_send = False
        self.completed: SharedOutput | None = None
        self.dealt_secret: int | None = None
        # Rec state
        self._rec_started = False
        self._rec: PointCollector | None = None
        self.reconstructed: ReconstructedOutput | None = None

    # -- helpers -------------------------------------------------------------

    def _state_for(self, commitment: FeldmanCommitment) -> _PerCommitmentState:
        state = self._per_c.get(commitment)
        if state is None:
            state = _PerCommitmentState()
            # The O(t^2) matrix collapse is deferred to the first batch
            # flush: a garbage commitment that never gathers a quorum
            # costs nothing beyond its buffer.
            self._per_c[commitment] = state
        return state

    def _flush_pending(
        self,
        commitment: FeldmanCommitment,
        state: _PerCommitmentState,
        pending: dict[int, int],
        promote_witnesses: bool = False,
    ) -> int:
        """Batch-verify buffered points against C; admit good ones to A_C.

        Returns the number of points accepted.  In a *ready* flush
        (``promote_witnesses``), verified points also promote their
        buffered witness signatures into the R_d proof set — an echo
        flush must not, since a sender's verified echo says nothing
        about its (separately buffered) ready point.
        """
        if not pending:
            return 0
        if state.point_verifier is None:
            state.point_verifier = commitment.column_vector(self.me)
        items = list(pending.items())
        pending.clear()
        good, _bad = state.point_verifier.batch_verify(items, rng=self.rng)
        for m, alpha in good:
            state.points[m] = alpha
            if promote_witnesses:
                witness = state.pending_witness.pop(m, None)
                if witness is not None:
                    state.ready_witnesses[m] = witness
        return len(good)

    def _log_and_send(self, ctx: Context, recipient: int, msg: Any) -> None:
        """send + record in B for later help-driven retransmission."""
        self._b_log[recipient].append(msg)
        ctx.send(recipient, msg)

    def _scalar_bytes(self) -> int:
        return self.config.group.scalar_bytes

    # Message sizes are the *true* wire length of the frame the codec
    # would emit (repro.net.wire), not a hand-computed estimate.  The
    # wire format is fixed-width given the group, so a zero-valued
    # prototype prices every real instance of the same shape — and the
    # result depends only on (kind, matrix dimensions, group), so one
    # encode per shape is cached rather than re-run per broadcast.

    def _wire_size(self, prototype: Any) -> int:
        from repro.net import wire

        return wire.encoded_size(
            prototype, self.config.codec, group=self.config.group
        )

    def _sized(self, key: tuple, prototype_fn: Callable[[], Any]) -> int:
        # The memo is module-level: frames are fixed-width, so the same
        # (kind, shape, group, codec) prices every session alike —
        # session ids are themselves fixed-width.
        key = key + (self.config.codec.name, type(self).__name__)
        cached = _SIZE_CACHE.get(key)
        if cached is None:
            cached = _SIZE_CACHE[key] = self._wire_size(prototype_fn())
        return cached

    def _send_size(self, commitment: FeldmanCommitment, with_poly: bool) -> int:
        return self._sized(
            ("send", commitment.degree, commitment.group, self.config.t, with_poly),
            lambda: SendMsg(
                self.session,
                commitment,
                Polynomial((0,) * (self.config.t + 1), self.config.group.q)
                if with_poly
                else None,
            ),
        )

    def _echo_size(self, commitment: FeldmanCommitment) -> int:
        return self._sized(
            ("echo", commitment.degree, commitment.group),
            lambda: EchoMsg(self.session, commitment, 0),
        )

    def _ready_size(self, commitment: FeldmanCommitment) -> int:
        return self._sized(
            ("ready", commitment.degree, commitment.group, self.sign_ready),
            lambda: ReadyMsg(
                self.session,
                commitment,
                0,
                Signature(0, 0) if self.sign_ready else None,
            ),
        )

    # -- operator inputs --------------------------------------------------------

    def start_dealing(self, secret: int, ctx: Context) -> BivariatePolynomial:
        """upon a message (P_d, tau, in, share, s)  — dealer only.

        Chooses the random symmetric bivariate polynomial with
        f_00 = s, commits, and sends each P_j its row polynomial.
        Returns the polynomial (the proactive layer needs it so it can
        erase it; see §5.2).
        """
        if self.me != self.session.dealer:
            raise RuntimeError("only the session dealer may start sharing")
        cfg = self.config
        poly = BivariatePolynomial.random_symmetric(
            cfg.t, cfg.group.q, self.rng, secret=secret
        )
        commitment = FeldmanCommitment.commit(poly, cfg.group)
        self.dealt_secret = secret % cfg.group.q
        size = self._send_size(commitment, with_poly=True)
        for j in cfg.indices:
            msg = SendMsg(
                self.session, commitment, poly.row_polynomial(j), size=size
            )
            self._log_and_send(ctx, j, msg)
        return poly

    def start_reconstruction(self, ctx: Context) -> None:
        """upon a message (P_d, tau, in, reconstruct) — protocol Rec.

        Broadcast our verified share; collect t+1 verified shares and
        interpolate at 0.
        """
        if self.completed is None:
            raise RuntimeError("cannot reconstruct before Sh completes")
        if self._rec_started:
            return
        self._rec_started = True
        self._rec = PointCollector(
            self.completed.commitment.column_vector(0), self.config.t + 1
        )
        from repro.net import wire

        msg = wire.stamp(
            SharePointMsg(self.session, self.completed.share),
            self.config.codec,
            group=self.config.group,
        )
        for j in self.config.indices:
            self._log_and_send(ctx, j, msg)

    def erase_dealt_polynomials(self) -> None:
        """§5.2 erasure: strip row polynomials from logged send messages.

        After resharing, a dealer must forget the univariate polynomials
        so that a later compromise cannot expose its previous-phase
        share; recovery retransmissions then carry commitments only.
        """
        for recipient, messages in self._b_log.items():
            self._b_log[recipient] = [
                SendMsg(m.session, m.commitment, None, m.size)
                if isinstance(m, SendMsg)
                else m
                for m in messages
            ]

    def start_recovery(self, ctx: Context) -> None:
        """upon (P_d, tau, in, recover):
        send (help) to all the nodes; send all messages in B."""
        for j in self.config.indices:
            ctx.send(j, HelpMsg(self.session))
        for recipient, messages in self._b_log.items():
            for msg in messages:
                ctx.send(recipient, msg)

    # -- network message dispatch --------------------------------------------------

    def handle(self, sender: int, msg: Any, ctx: Context) -> None:
        if isinstance(msg, SendMsg):
            self._on_send(sender, msg, ctx)
        elif isinstance(msg, EchoMsg):
            self._on_echo(sender, msg, ctx)
        elif isinstance(msg, ReadyMsg):
            self._on_ready(sender, msg, ctx)
        elif isinstance(msg, HelpMsg):
            self._on_help(sender, ctx)
        elif isinstance(msg, SharePointMsg):
            self._on_rec_share(sender, msg, ctx)
        else:
            raise TypeError(f"unexpected VSS message {msg!r}")

    # upon a message (P_d, tau, send, C, a) from P_d (first time):
    def _on_send(self, sender: int, msg: SendMsg, ctx: Context) -> None:
        if sender != self.session.dealer or self._seen_send:
            return
        if msg.poly is None:
            # Renewal-mode retransmission carries no polynomial; it only
            # re-publishes C and cannot trigger echoes.
            return
        self._seen_send = True
        commitment = msg.commitment
        if (
            self.expected_secret_commitment is not None
            and commitment.public_key() != self.expected_secret_commitment
        ):
            return  # dealer is not resharing its certified previous share
        # if verify-poly(C, i, a) then send echo(C, a(j)) to each P_j
        if not commitment.verify_poly(self.me, msg.poly):
            return
        size = self._echo_size(commitment)
        for j in self.config.indices:
            echo = EchoMsg(self.session, commitment, msg.poly(j), size=size)
            self._log_and_send(ctx, j, echo)

    # upon a message (P_d, tau, echo, C, alpha) from P_m (first time):
    def _on_echo(self, sender: int, msg: EchoMsg, ctx: Context) -> None:
        state = self._state_for(msg.commitment)
        if sender in state.echo_seen:
            return
        state.echo_seen.add(sender)
        # Buffer the point; verification happens in batch at the
        # threshold (if verify-point(C, i, m, alpha) then A_C += ...).
        state.pending_echo[sender] = msg.point
        cfg = self.config
        # The echo branch of Fig. 1 only drives the ready send (guarded
        # by r_C < t+1, which the amplify path makes equivalent to "not
        # sent yet"); once that happened, buffered echoes can rest.
        if state.sent_ready or state.ready_count >= cfg.ready_threshold:
            return
        # if e_C = ceil((n+t+1)/2) and r_C < t+1: interpolate; send ready
        if state.echo_count + len(state.pending_echo) < cfg.echo_threshold:
            return
        state.echo_count += self._flush_pending(
            msg.commitment, state, state.pending_echo
        )
        if state.echo_count >= cfg.echo_threshold:
            self._interpolate_and_send_ready(msg.commitment, state, ctx)

    # upon a message (P_d, tau, ready, C, alpha) from P_m (first time):
    def _on_ready(self, sender: int, msg: ReadyMsg, ctx: Context) -> None:
        state = self._state_for(msg.commitment)
        if sender in state.ready_seen:
            return
        state.ready_seen.add(sender)
        if self.sign_ready:
            # Extended mode: only count readies carrying a valid signature,
            # and retain them as the R_d proof set.  Signatures bind to
            # the sender individually, so they are checked on arrival;
            # only the point check batches.
            if msg.signature is None or self.ca is None:
                return
            payload = ready_signing_bytes(
                self.session, commitment_digest(msg.commitment)
            )
            if not self.ca.verify(sender, payload, msg.signature):
                return
            state.pending_witness[sender] = ReadyWitness(sender, msg.signature)
        state.pending_ready[sender] = msg.point
        cfg = self.config
        buffered = state.ready_count + len(state.pending_ready)
        amplify_due = not state.sent_ready and buffered >= cfg.ready_threshold
        complete_due = self.completed is None and buffered >= cfg.output_threshold
        if not (amplify_due or complete_due):
            return
        state.ready_count += self._flush_pending(
            msg.commitment, state, state.pending_ready, promote_witnesses=True
        )
        if (
            state.ready_count >= cfg.ready_threshold
            and state.echo_count < cfg.echo_threshold
        ):
            # if r_C = t+1 and e_C < ceil((n+t+1)/2): interpolate; send ready
            self._interpolate_and_send_ready(msg.commitment, state, ctx)
        if state.ready_count >= cfg.output_threshold:
            # else if r_C = n-t-f: s_i <- a(0); output shared
            self._complete(msg.commitment, state, ctx)

    def _interpolate_and_send_ready(
        self,
        commitment: FeldmanCommitment,
        state: _PerCommitmentState,
        ctx: Context,
    ) -> None:
        """Lagrange-interpolate a from A_C; send ready(C, a(j)) to each P_j."""
        if state.sent_ready:
            return
        state.sent_ready = True
        cfg = self.config
        points = sorted(state.points.items())[: cfg.t + 1]
        state.row_poly = interpolate_polynomial(points, cfg.group.q)
        signature = None
        if self.sign_ready:
            assert self.keystore is not None
            payload = ready_signing_bytes(self.session, commitment_digest(commitment))
            signature = self.keystore.sign(payload, self.rng)
        size = self._ready_size(commitment)
        for j in cfg.indices:
            ready = ReadyMsg(
                self.session,
                commitment,
                state.row_poly(j),
                signature=signature,
                size=size,
            )
            self._log_and_send(ctx, j, ready)

    def _complete(
        self,
        commitment: FeldmanCommitment,
        state: _PerCommitmentState,
        ctx: Context,
    ) -> None:
        if self.completed is not None:
            return
        if state.row_poly is None:
            # Cannot happen for honest thresholds (ready_count passed t+1
            # first, which interpolates); guard against misuse.
            points = sorted(state.points.items())[: self.config.t + 1]
            state.row_poly = interpolate_polynomial(points, self.config.group.q)
        share = state.row_poly(0)  # s_i = a(0) = f(0, i)
        proof = tuple(
            list(state.ready_witnesses.values())[: self.config.output_threshold]
        )
        self.completed = SharedOutput(self.session, commitment, share, proof)
        ctx.output(self.completed)
        self.on_shared(self.completed)

    # upon a message (P_d, tau, help) from P_l:
    def _on_help(self, sender: int, ctx: Context) -> None:
        cfg = self.config
        count = self._help_from.get(sender, 0)
        # if c_l <= d(kappa) and c <= (t+1) d(kappa):
        if count >= cfg.help_per_node_budget:
            return
        if self._help_total >= cfg.help_total_budget:
            return
        self._help_from[sender] = count + 1
        self._help_total += 1
        # send all messages of B_l
        for msg in self._b_log[sender]:
            ctx.send(sender, msg)

    # Rec protocol: collect share points, batch-verify at the t+1
    # threshold, and interpolate the survivors.
    def _on_rec_share(self, sender: int, msg: SharePointMsg, ctx: Context) -> None:
        if self.reconstructed is not None or not self._rec_started:
            return
        if self._rec is None or self._rec.seen(sender):
            return
        if self._rec.add(sender, msg.point, rng=self.rng):
            value = reconstruct_raw(
                self._rec.first_points(), self.config.group.q
            )
            self.reconstructed = ReconstructedOutput(self.session, value)
            ctx.output(self.reconstructed)
            self.on_reconstructed(self.reconstructed)
