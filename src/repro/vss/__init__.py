"""HybridVSS (§3): asynchronous verifiable secret sharing for the
hybrid Byzantine + crash-recovery model.

Public API:

* :class:`VssConfig` — deployment parameters (n, t, f, group, codec);
* :func:`run_vss` — one-call simulated sharing (plus optional Rec);
* :class:`VssSession` — the per-session state machine (Fig. 1), for
  embedding (the DKG runs n of these);
* message and output dataclasses in :mod:`repro.vss.messages`.
"""

from repro.vss.config import ResilienceError, VssConfig
from repro.vss.messages import (
    EchoMsg,
    HelpMsg,
    ReadyMsg,
    ReadyWitness,
    ReconstructInput,
    ReconstructedOutput,
    RecoverInput,
    SendMsg,
    SessionId,
    ShareInput,
    SharedOutput,
    SharePointMsg,
)
from repro.vss.node import VssNode, VssRunResult, run_vss
from repro.vss.session import VssSession

__all__ = [
    "EchoMsg",
    "HelpMsg",
    "ReadyMsg",
    "ReadyWitness",
    "ReconstructInput",
    "ReconstructedOutput",
    "RecoverInput",
    "ResilienceError",
    "SendMsg",
    "SessionId",
    "ShareInput",
    "SharedOutput",
    "SharePointMsg",
    "VssConfig",
    "VssNode",
    "VssRunResult",
    "VssSession",
    "run_vss",
]
