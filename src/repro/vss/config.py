"""Shared protocol configuration for HybridVSS and the DKG built on it.

Encodes the hybrid-model resilience arithmetic of §2.2:

* ``n >= 3t + 2f + 1`` nodes overall;
* echo threshold ``ceil((n + t + 1) / 2)`` (Fig. 1);
* ready-amplification threshold ``t + 1``;
* output threshold ``n - t - f`` (the count of *finally up* honest
  nodes that must be represented before a node completes);
* help-request budgets ``c_l <= d(kappa)`` and ``c <= (t+1) d(kappa)``.

Node indices run 1..n — index 0 is reserved for the secret itself
(shares are evaluations at the node index, the secret at 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import quorum
from repro.crypto.backend import AbstractGroup
from repro.crypto.groups import toy_group
from repro.crypto.hashing import FullMatrixCodec, HashedMatrixCodec


class ResilienceError(ValueError):
    """Raised when (n, t, f) violates n >= 3t + 2f + 1."""


@dataclass(frozen=True)
class VssConfig:
    """Static parameters shared by every node of one deployment.

    ``members`` defaults to indices 1..n; group modification (§6) may
    leave gaps (e.g. after removing node 3 the members are (1, 2, 4,
    5, ...)).  Indices double as polynomial evaluation points, so they
    must be positive and never re-used for different identities.
    """

    n: int
    t: int
    f: int = 0
    group: AbstractGroup = field(default_factory=toy_group)
    codec: FullMatrixCodec | HashedMatrixCodec = field(
        default_factory=FullMatrixCodec
    )
    d_budget: int = 10
    enforce_resilience: bool = True
    members: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.n < 1 or self.t < 0 or self.f < 0:
            raise ValueError("need n >= 1, t >= 0, f >= 0")
        if self.members is not None:
            members = tuple(sorted(self.members))
            if len(members) != self.n:
                raise ValueError(
                    f"{len(members)} members inconsistent with n={self.n}"
                )
            if len(set(members)) != len(members) or members[0] < 1:
                raise ValueError("members must be distinct positive indices")
            object.__setattr__(self, "members", members)
        if self.enforce_resilience and not self.satisfies_resilience():
            raise ResilienceError(
                f"n={self.n} < 3t+2f+1 = "
                f"{quorum.resilience_bound(self.t, self.f)}"
            )

    def satisfies_resilience(self) -> bool:
        return quorum.satisfies_resilience(self.n, self.t, self.f)

    @property
    def echo_threshold(self) -> int:
        """ceil((n + t + 1) / 2) — enough echoes to pin down one C."""
        return quorum.echo_threshold(self.n, self.t)

    @property
    def ready_threshold(self) -> int:
        """t + 1 — at least one honest ready, triggers amplification."""
        return quorum.ready_threshold(self.t)

    @property
    def output_threshold(self) -> int:
        """n - t - f — ready count at which Sh completes."""
        return quorum.output_threshold(self.n, self.t, self.f)

    @property
    def help_per_node_budget(self) -> int:
        """c_l <= d(kappa)."""
        return self.d_budget

    @property
    def help_total_budget(self) -> int:
        """c <= (t + 1) d(kappa)."""
        return (self.t + 1) * self.d_budget

    @property
    def indices(self) -> list[int]:
        """Member indices (0 is reserved for the secret's evaluation point)."""
        if self.members is not None:
            return list(self.members)
        return list(range(1, self.n + 1))
