"""Standalone HybridVSS node and one-call simulation helpers.

:class:`VssNode` hosts a single :class:`~repro.vss.session.VssSession`
behind the :class:`~repro.sim.node.ProtocolNode` interface, and
:func:`run_vss` assembles a full deployment (nodes, network, adversary),
runs protocol Sh — optionally followed by Rec — and returns a
:class:`VssRunResult` with shares, metrics and reconstruction values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.sim.adversary import Adversary
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.node import Context, ProtocolNode
from repro.sim.runner import Simulation
from repro.vss.config import VssConfig
from repro.vss.messages import (
    ReconstructInput,
    ReconstructedOutput,
    RecoverInput,
    SessionId,
    ShareInput,
    SharedOutput,
)
from repro.vss.session import VssSession


@dataclass
class VssNode(ProtocolNode):
    """A protocol node running exactly one HybridVSS session."""

    config: VssConfig = None  # type: ignore[assignment]
    session_id: SessionId = None  # type: ignore[assignment]
    session: VssSession = field(init=False)
    shared: SharedOutput | None = None
    reconstructed: ReconstructedOutput | None = None

    # Subclasses may substitute a session variant (e.g. the
    # general-bivariate AVSS cost model used by the E9 ablation).
    session_cls: type[VssSession] = VssSession

    def __post_init__(self) -> None:
        if self.config is None or self.session_id is None:
            raise ValueError("VssNode requires a config and session id")
        self.session = self.session_cls(
            self.config,
            self.node_id,
            self.session_id,
            on_shared=self._record_shared,
            on_reconstructed=self._record_reconstructed,
        )

    def _record_shared(self, output: SharedOutput) -> None:
        self.shared = output

    def _record_reconstructed(self, output: ReconstructedOutput) -> None:
        self.reconstructed = output

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        self.session.handle(sender, payload, ctx)

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, ShareInput):
            self.session.start_dealing(payload.secret, ctx)
        elif isinstance(payload, ReconstructInput):
            self.session.start_reconstruction(ctx)
        elif isinstance(payload, RecoverInput):
            self.session.start_recovery(ctx)
        else:
            raise TypeError(f"unexpected operator input {payload!r}")

    def on_recover(self, ctx: Context) -> None:
        # §5.3: automatic share recovery is wired into the reboot
        # procedure — a recovering node immediately asks for help.
        self.session.start_recovery(ctx)


@dataclass
class VssRunResult:
    """Everything a test or bench wants to know about one VSS run."""

    config: VssConfig
    secret: int
    nodes: dict[int, VssNode]
    metrics: Metrics
    simulation: Simulation

    @property
    def shares(self) -> dict[int, SharedOutput]:
        return {
            i: node.shared for i, node in self.nodes.items() if node.shared
        }

    @property
    def completed_nodes(self) -> list[int]:
        return sorted(self.shares)

    @property
    def reconstructions(self) -> dict[int, int]:
        return {
            i: node.reconstructed.value
            for i, node in self.nodes.items()
            if node.reconstructed
        }

    def agreed_commitment(self) -> Any:
        """The single commitment all completing nodes agreed on.

        Raises AssertionError if two nodes completed with different C —
        which would be a consistency violation.
        """
        commitments = {out.commitment for out in self.shares.values()}
        if len(commitments) > 1:
            raise AssertionError("consistency violation: divergent commitments")
        if not commitments:
            raise AssertionError("no node completed Sh")
        return commitments.pop()


def run_vss(
    config: VssConfig,
    secret: int | None = None,
    dealer: int = 1,
    tau: int = 0,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    adversary: Adversary | None = None,
    reconstruct: bool = False,
    node_factory: dict[int, Any] | None = None,
    until: float | None = None,
    observers: list[Any] | None = None,
) -> VssRunResult:
    """Simulate one full HybridVSS sharing (and optionally Rec).

    ``node_factory`` maps node indices to replacement ProtocolNode
    instances, which is how tests inject Byzantine dealers/participants.
    ``observers`` are forwarded to the simulation (see
    :mod:`repro.sim.tracing`); the wire-codec tests use one to check
    that every delivered payload is stamped with its true frame length.
    """
    rng = random.Random(("run-vss", seed).__repr__())
    if secret is None:
        secret = config.group.random_scalar(rng)
    session_id = SessionId(dealer, tau)
    sim = Simulation(
        delay_model=delay_model or UniformDelay(),
        adversary=adversary or Adversary.passive(config.t, config.f),
        seed=seed,
        observers=observers,
    )
    nodes: dict[int, VssNode] = {}
    for i in config.indices:
        if node_factory and i in node_factory:
            node = node_factory[i]
        else:
            node = VssNode(i, config, session_id)
        sim.add_node(node)
        if isinstance(node, VssNode):
            nodes[i] = node
    sim.inject(dealer, ShareInput(session_id, secret), at=0.0)
    sim.run(until=until)
    if reconstruct:
        for i, node in nodes.items():
            if node.shared is not None and i not in sim.crashed:
                sim.inject(i, ReconstructInput(session_id), at=sim.queue.now)
        sim.run(until=until)
    return VssRunResult(config, secret % config.group.q, nodes, sim.metrics, sim)
