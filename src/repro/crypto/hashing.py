"""Commitment digests and hash utilities.

Cachin et al. [17, §3.4] observe that the O(kappa n^4) communication of
AVSS-style sharing is dominated by every ``echo``/``ready`` message
carrying the full (t+1) x (t+1) commitment matrix, and that replacing
the matrix with a collision-resistant hash in those messages reduces
communication to O(kappa n^3).  The paper states the trick "remains
applicable in our HybridVSS"; the E1 benchmark measures both codecs.

This module provides the digest, hash-to-scalar helpers used by the
Fiat--Shamir constructions, and the two commitment *codecs* that the
metrics layer uses to price messages:

* :class:`FullMatrixCodec` — every message carries the full matrix;
* :class:`HashedMatrixCodec` — ``send`` carries the matrix, while
  ``echo``/``ready`` carry only its 32-byte digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.feldman import FeldmanCommitment

DIGEST_BYTES = 32


def commitment_digest(commitment: FeldmanCommitment) -> bytes:
    """Collision-resistant digest of a commitment matrix.

    Entries are hashed in the group's canonical serialization, so the
    digest is well defined for every backend (fixed-width residues for
    modp, compressed points for secp256k1) and unchanged for modp."""
    h = hashlib.sha256()
    h.update(b"feldman-matrix|")
    to_bytes = commitment.group.element_to_bytes
    for row in commitment.matrix:
        for entry in row:
            h.update(to_bytes(entry))
    return h.digest()


def hash_to_scalar(q: int, *parts: bytes) -> int:
    """Hash arbitrary byte strings into Z_q (Fiat-Shamir challenges)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return int.from_bytes(h.digest(), "big") % q


def hash_to_element(group_p: int, group_q: int, *parts: bytes) -> int:
    """Hash into the order-q subgroup of Z_p^* (for DPRF inputs).

    Hashes to Z_p then raises to the cofactor, retrying on the identity.
    """
    cofactor = (group_p - 1) // group_q
    counter = 0
    while True:
        h = hashlib.sha256()
        h.update(b"hash-to-element|" + str(counter).encode() + b"|")
        for part in parts:
            h.update(len(part).to_bytes(4, "big"))
            h.update(part)
        candidate = int.from_bytes(h.digest(), "big") % group_p
        element = pow(candidate, cofactor, group_p)
        if element != 1:
            return element
        counter += 1


@dataclass(frozen=True)
class FullMatrixCodec:
    """Price every protocol message as carrying the full commitment matrix."""

    name: str = "full-matrix"

    def send_overhead(self, commitment: FeldmanCommitment) -> int:
        return commitment.byte_size()

    def echo_overhead(self, commitment: FeldmanCommitment) -> int:
        return commitment.byte_size()

    def ready_overhead(self, commitment: FeldmanCommitment) -> int:
        return commitment.byte_size()


@dataclass(frozen=True)
class HashedMatrixCodec:
    """Cachin et al. compression: echo/ready carry only a digest.

    The dealer's ``send`` must still carry the matrix (nodes need it to
    run verify-poly / verify-point), so only the quadratic number of
    echo/ready messages are compressed — exactly the dominant term.
    """

    name: str = "hashed-matrix"

    def send_overhead(self, commitment: FeldmanCommitment) -> int:
        return commitment.byte_size()

    def echo_overhead(self, commitment: FeldmanCommitment) -> int:
        return DIGEST_BYTES

    def ready_overhead(self, commitment: FeldmanCommitment) -> int:
        return DIGEST_BYTES
