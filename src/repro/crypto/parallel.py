"""Process-pool crypto executor: fan the batchable hot paths across cores.

BENCH_e14/e15 show the system is arithmetic-bound: one node saturates
one core while batched verification, large multiexps and whole-deficit
presignature forging are embarrassingly parallel over independent
claims.  This module is the seam that lets the effect-interpreter side
of the sans-I/O split use every core without touching the protocol
machines:

* :class:`CryptoExecutor` owns a lazy :class:`ProcessPoolExecutor` and
  exposes the three fan-out shapes — chunked randomized-linear-
  combination verification (:meth:`CryptoExecutor.verify_claims`),
  chunked multi-exponentiation (:meth:`CryptoExecutor.multiexp`), and a
  generic ordered parallel map (:meth:`CryptoExecutor.map_jobs`) used
  by the service forge and the benchmarks;
* work crosses the process boundary in picklable form: group parameters
  travel as small spec tuples (rebuilt per worker through an
  ``lru_cache``, so fixed-base tables stay warm across chunks), entry
  vectors and results as the canonical group serialization, and claims
  as plain ``(index, value)`` int pairs;
* every fan-out degrades serially: ``cores <= 1`` disables the pool, a
  failed chunk falls back to the in-process path for that call, and a
  broken pool (killed worker, fork failure) permanently degrades the
  executor to serial — callers never see an exception, only the same
  results slower.

Determinism contract: parallelism never changes protocol transcripts.
The chunked verifier consumes exactly one 128-bit salt from the
caller's rng — the same single draw as the serial path — and derives
per-chunk salts by hashing, and chunk partitioning is contiguous, so
``(good, bad)`` results are identical to serial verification (per-item
fallback still pinpoints Byzantine senders, now localized to the
offending chunk).

The ambient-executor pattern mirrors :func:`repro.obs.metrics.set_registry`:
drivers and services install an executor for a scope
(:func:`executor_scope`), hot paths consult :func:`active_executor` and
run serially when none is installed.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from functools import lru_cache

from repro.crypto import metering
from repro.obs import metrics as obs_metrics

# Metric names (see repro.obs.metrics):
CHUNKS_TOTAL = "repro_crypto_parallel_chunks_total"
WORKERS_GAUGE = "repro_crypto_parallel_workers"
INFLIGHT_GAUGE = "repro_crypto_parallel_inflight_chunks"
CHUNK_SECONDS = "repro_crypto_parallel_chunk_seconds"

# Engagement thresholds.  Below these sizes the fan-out costs more in
# IPC + per-chunk RLC overhead than it saves; protocol-sized batches
# (n <= 25 claims) stay on the serial path by default, which also keeps
# the parallel path out of the way of seeded unit tests.
MIN_CLAIMS = 32
MIN_TERMS = 600


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def resolve_cores(cores: int | None) -> int:
    """``--cores`` semantics: ``None``/``1`` serial, ``0`` = all cores."""
    if cores is None:
        return 1
    if cores <= 0:
        return max(1, available_cpus())
    return cores


# -- picklable group specs -----------------------------------------------------


def group_spec(group: Any) -> tuple:
    """A small picklable description of a group backend."""
    if getattr(group, "name", "") == "secp256k1":
        return ("secp256k1",)
    return ("modp", group.p, group.q, group.g, group.name)


@lru_cache(maxsize=64)
def group_from_spec(spec: tuple) -> Any:
    """Rebuild a backend from its spec (cached per worker process, so
    fixed-base tables and shared-base caches stay warm across chunks)."""
    if spec[0] == "secp256k1":
        from repro.crypto.ec import secp256k1_group

        return secp256k1_group()
    from repro.crypto.groups import SchnorrGroup

    _, p, q, g, name = spec
    return SchnorrGroup(p, q, g, name=name)


def partition(items: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split into at most ``parts`` contiguous, near-equal chunks.

    Contiguity is what makes chunked verification order-preserving:
    concatenating per-chunk results reproduces the serial ordering.
    """
    items = list(items)
    if not items:
        return []
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def derive_chunk_salt(salt: int, index: int) -> int:
    """Per-chunk 128-bit weight salt from the single caller-drawn salt.

    The serial verifier draws one ``getrandbits(128)`` from the protocol
    rng; the parallel path consumes that same single draw and fans it
    out by hashing, so rng streams — and therefore transcripts — are
    identical whether or not a pool is installed.
    """
    digest = hashlib.sha256(
        b"parallel-chunk-salt|"
        + salt.to_bytes(16, "big")
        + index.to_bytes(4, "big")
    ).digest()
    return int.from_bytes(digest[:16], "big")


# -- worker-side jobs (module-level: picklable by reference) -------------------


def _worker_init() -> None:
    """Pool-worker initializer: a forked worker must never consult the
    parent's ambient executor (its pool handle is not usable here) or
    publish to the parent's registry."""
    set_executor(None)
    obs_metrics.set_registry(None)


def _verify_chunk_job(payload: tuple) -> tuple[float, list, list, bool]:
    """One RLC check over a contiguous claim chunk, per-item fallback
    included; returns ``(elapsed, good, bad, fell_back)``."""
    spec, entries_raw, base_raw, chunk, salt = payload
    started = time.perf_counter()
    group = group_from_spec(spec)
    from repro.crypto.backend import BatchedClaimVerifier

    verifier = BatchedClaimVerifier(
        group,
        [group.element_decode(raw) for raw in entries_raw],
        group.element_decode(base_raw),
    )
    good, bad, fell_back = verifier.verify_salted(chunk, salt)
    return time.perf_counter() - started, good, bad, fell_back


def _multiexp_chunk_job(payload: tuple) -> tuple[float, bytes]:
    """Partial product over one chunk of ``(element, exponent)`` pairs;
    the partial result returns in canonical serialized form."""
    spec, chunk = payload
    started = time.perf_counter()
    group = group_from_spec(spec)
    if spec[0] == "secp256k1":
        from repro.crypto.ec import ec_multiexp

        partial = ec_multiexp(
            (group.element_decode(raw), exp) for raw, exp in chunk
        )
    else:
        from repro.crypto.multiexp import multiexp

        partial = multiexp(
            ((group.element_decode(raw), exp) for raw, exp in chunk),
            group.p,
            group.q,
        )
    return time.perf_counter() - started, group.element_to_bytes(partial)


# -- the executor --------------------------------------------------------------


class CryptoExecutor:
    """A process-pool seam for the batchable crypto hot paths.

    ``cores`` follows the CLI contract: ``1`` (default) is serial,
    ``0`` resolves to every available core, ``N > 1`` is explicit.  The
    pool is created lazily on first fan-out (or eagerly via
    :meth:`warm`, which services call before their event loop starts so
    the fork happens from a quiet process).
    """

    def __init__(
        self,
        cores: int | None = 0,
        *,
        min_claims: int = MIN_CLAIMS,
        min_terms: int = MIN_TERMS,
    ):
        self.requested = cores
        self.cores = resolve_cores(cores)
        self.min_claims = min_claims
        self.min_terms = min_terms
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.cores > 1 and not self._broken

    def wants_claims(self, count: int) -> bool:
        return self.parallel and count >= self.min_claims

    def wants_terms(self, count: int) -> bool:
        return self.parallel and count >= self.min_terms

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if not self.parallel:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.cores, initializer=_worker_init
                )
            except OSError:
                self._mark_broken()
                return None
            obs_metrics.gauge_set(
                WORKERS_GAUGE,
                self.cores,
                help="process-pool workers available to the crypto executor",
            )
        return self._pool

    def warm(self) -> None:
        """Create the pool now (before event loops / threads start)."""
        self._ensure_pool()

    def _mark_broken(self) -> None:
        self._broken = True
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        obs_metrics.gauge_set(
            WORKERS_GAUGE,
            0,
            help="process-pool workers available to the crypto executor",
        )

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
            obs_metrics.gauge_set(
                WORKERS_GAUGE,
                0,
                help="process-pool workers available to the crypto executor",
            )

    def __enter__(self) -> "CryptoExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the generic fan-out core ------------------------------------------

    def _run_chunks(
        self, kind: str, job: Callable[[tuple], Any], payloads: list[tuple]
    ) -> list[Any] | None:
        """Submit every payload, collect results in order.

        Returns ``None`` when the pool is unusable or any chunk raised —
        the caller then runs its own serial path (counted under
        ``mode="serial"`` so degradation is visible in metrics).  A
        broken pool poisons the executor permanently; an ordinary chunk
        exception only fails this call.
        """
        pool = self._ensure_pool()
        if pool is None:
            self._count_chunks(kind, "serial", len(payloads))
            return None
        obs_metrics.gauge_set(
            INFLIGHT_GAUGE,
            len(payloads),
            help="chunks currently submitted to the crypto pool",
            kind=kind,
        )
        try:
            futures = [pool.submit(job, payload) for payload in payloads]
            results = [future.result() for future in futures]
        except BrokenExecutor:
            self._mark_broken()
            self._count_chunks(kind, "serial", len(payloads))
            return None
        except Exception:
            self._count_chunks(kind, "serial", len(payloads))
            return None
        finally:
            obs_metrics.gauge_set(
                INFLIGHT_GAUGE,
                0,
                help="chunks currently submitted to the crypto pool",
                kind=kind,
            )
        self._count_chunks(kind, "pool", len(payloads))
        for result in results:
            if isinstance(result, tuple) and result and isinstance(result[0], float):
                obs_metrics.observe(
                    CHUNK_SECONDS,
                    result[0],
                    help="in-worker wall time of one crypto chunk",
                    kind=kind,
                )
        return results

    @staticmethod
    def _count_chunks(kind: str, mode: str, count: int) -> None:
        obs_metrics.counter_inc(
            CHUNKS_TOTAL,
            count,
            help="crypto chunks fanned out by kind and execution mode",
            kind=kind,
            mode=mode,
        )

    # -- fan-out shape 1: chunked RLC claim verification -------------------

    def verify_claims(
        self,
        group: Any,
        entries: Sequence[Any],
        base: Any,
        batch: list[tuple[int, int]],
        salt: int,
    ) -> tuple[list[tuple[int, int]], list[int]] | None:
        """Chunked batch verification; ``None`` means "run serially".

        Chunks are contiguous so concatenation reproduces the serial
        ordering; a chunk whose RLC fails falls back per item *inside
        the worker*, so Byzantine claims still pinpoint their senders.
        """
        chunks = partition(batch, self.cores)
        if len(chunks) < 2:
            return None
        spec = group_spec(group)
        entries_raw = [group.element_to_bytes(entry) for entry in entries]
        base_raw = group.element_to_bytes(base)
        payloads = [
            (spec, entries_raw, base_raw, chunk, derive_chunk_salt(salt, i))
            for i, chunk in enumerate(chunks)
        ]
        results = self._run_chunks("verify", _verify_chunk_job, payloads)
        if results is None:
            return None
        backend = "secp256k1" if group.name == "secp256k1" else "modp"
        good: list[tuple[int, int]] = []
        bad: list[int] = []
        for _, chunk_good, chunk_bad, fell_back in results:
            good.extend(chunk_good)
            bad.extend(chunk_bad)
            obs_metrics.counter_inc(
                metering.BATCH_VERIFY,
                help="batch-verify outcomes",
                backend=backend,
                outcome="fallback" if fell_back else "batch_ok",
            )
        return good, bad

    def verify_claim_sets(
        self,
        group: Any,
        jobs: Sequence[tuple[Sequence[Any], Any, list[tuple[int, int]], int]],
    ) -> list[tuple[list[tuple[int, int]], list[int]]] | None:
        """Many *independent* claim sets in parallel (one worker job per
        set): ``jobs`` is ``[(entries, base, batch, salt), ...]``.  The
        embarrassingly-parallel shape behind BENCH_e18's throughput axis.
        """
        if not self.parallel or not jobs:
            return None
        spec = group_spec(group)
        payloads = [
            (
                spec,
                [group.element_to_bytes(entry) for entry in entries],
                group.element_to_bytes(base),
                list(batch),
                salt,
            )
            for entries, base, batch, salt in jobs
        ]
        results = self._run_chunks("claim_sets", _verify_chunk_job, payloads)
        if results is None:
            return None
        return [(good, bad) for _, good, bad, _ in results]

    # -- fan-out shape 2: chunked multiexp ---------------------------------

    def multiexp(self, group: Any, pairs: Sequence[tuple[Any, int]]) -> Any | None:
        """Partial products across chunks, combined with ``group.mul``;
        ``None`` means "run serially"."""
        chunks = partition(list(pairs), self.cores)
        if len(chunks) < 2:
            return None
        spec = group_spec(group)
        payloads = [
            (
                spec,
                [(group.element_to_bytes(elem), exp) for elem, exp in chunk],
            )
            for chunk in chunks
        ]
        results = self._run_chunks("multiexp", _multiexp_chunk_job, payloads)
        if results is None:
            return None
        acc = group.identity
        for _, partial_raw in results:
            acc = group.mul(acc, group.element_from_bytes(partial_raw))
        return acc

    # -- fan-out shape 3: generic ordered map (forge, benchmarks) ----------

    def map_jobs(
        self, kind: str, job: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> list[Any] | None:
        """Ordered parallel map of a module-level function; ``None``
        means "run serially".  Jobs returning ``(elapsed, ...)`` tuples
        feed the chunk-latency histogram."""
        payloads = list(payloads)
        if not self.parallel or not payloads:
            return None
        return self._run_chunks(kind, job, payloads)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "broken" if self._broken else f"cores={self.cores}"
        return f"CryptoExecutor({state})"


# -- the ambient executor ------------------------------------------------------

_ACTIVE: CryptoExecutor | None = None


def active_executor() -> CryptoExecutor | None:
    """The currently installed executor, or ``None`` (serial)."""
    return _ACTIVE


def set_executor(executor: CryptoExecutor | None) -> CryptoExecutor | None:
    """Install the ambient executor; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = executor
    return previous


@contextmanager
def executor_scope(
    executor: CryptoExecutor | None,
) -> Iterator[CryptoExecutor | None]:
    """Install ``executor`` for a ``with`` scope, restoring on exit."""
    previous = set_executor(executor)
    try:
        yield executor
    finally:
        set_executor(previous)


def acceleration_status(executor: CryptoExecutor | None = None) -> dict[str, Any]:
    """What fast paths this process actually has (for STATUS/OPS)."""
    from repro.crypto import intops

    if executor is None:
        executor = active_executor()
    ec_mod = sys.modules.get("repro.crypto.ec")
    if ec_mod is None:
        from repro.crypto import ec as ec_mod
    return {
        "gmpy2": intops.HAVE_GMPY2,
        "coincurve": ec_mod.HAVE_COINCURVE,
        "parallel_cores": executor.cores if executor is not None else 1,
        "parallel_active": bool(executor is not None and executor.parallel),
        "available_cpus": available_cpus(),
    }
