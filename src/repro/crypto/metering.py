"""Near-zero-overhead operation counters for the crypto engines.

Group exponentiations dominate every protocol run (BENCH_e13–e16), so
the engines cannot afford a registry lookup per call — on the toy test
groups that would cost more than the powmod itself.  Instead each
backend bumps a plain slotted attribute here (~an attribute increment;
no locks — counts are best-effort under free threading, exact under the
GIL) and a snapshot-time *collector* publishes the totals, together
with the fixed-base ``lru_cache`` statistics, into whichever registry
is being rendered (see :func:`repro.obs.metrics.register_collector`).

Metric names:

* ``repro_crypto_group_ops_total{backend,op}`` — power/commit/multiexp
  calls per backend;
* ``repro_crypto_fixed_base_cache_total{backend,outcome}`` — hit/miss
  counts of the fixed-base window-table caches;
* ``repro_crypto_batch_verify_total{backend,outcome}`` — batch-verify
  outcomes (``batch_ok`` vs ``fallback``), incremented at the call site
  in :mod:`repro.crypto.backend` (cold path, registry helper is fine).
"""

from __future__ import annotations

import sys

from repro.obs import metrics as obs_metrics

GROUP_OPS = "repro_crypto_group_ops_total"
CACHE_EVENTS = "repro_crypto_fixed_base_cache_total"
BATCH_VERIFY = "repro_crypto_batch_verify_total"


class OpCounts:
    """Plain per-backend operation tallies (hot-path increment targets)."""

    __slots__ = ("power", "commit", "multiexp")

    def __init__(self) -> None:
        self.power = 0
        self.commit = 0
        self.multiexp = 0


MODP = OpCounts()
EC = OpCounts()


def _publish_cache(reg, backend: str, info) -> None:
    help_text = "fixed-base window-table lru cache outcomes"
    reg.counter(CACHE_EVENTS, help_text, backend=backend, outcome="hit").set_total(
        info.hits
    )
    reg.counter(CACHE_EVENTS, help_text, backend=backend, outcome="miss").set_total(
        info.misses
    )


@obs_metrics.register_collector
def _collect(reg) -> None:
    """Copy the raw tallies into ``reg`` (runs at snapshot/render time)."""
    for backend, ops in (("modp", MODP), ("secp256k1", EC)):
        for op in ("power", "commit", "multiexp"):
            reg.counter(
                GROUP_OPS,
                "group exponentiations by backend and operation",
                backend=backend,
                op=op,
            ).set_total(getattr(ops, op))
    # Cache stats come from the engine modules, but only if they are
    # already imported — a collector must never force the EC stack in.
    multiexp_mod = sys.modules.get("repro.crypto.multiexp")
    if multiexp_mod is not None:
        _publish_cache(reg, "modp", multiexp_mod.fixed_base_table.cache_info())
    ec_mod = sys.modules.get("repro.crypto.ec")
    if ec_mod is not None:
        _publish_cache(reg, "secp256k1", ec_mod.ec_fixed_base.cache_info())
