"""Symmetric bivariate polynomials over Z_q (HybridVSS, §3).

The dealer in HybridVSS chooses a random *symmetric* bivariate
polynomial ``f(x, y) = sum_{j,l} f_jl x^j y^l`` with ``f_00 = s`` and
``f_jl = f_lj``.  Node ``P_i``'s row polynomial is ``a_i(y) = f(i, y)``;
symmetry gives ``f(i, m) = f(m, i)``, which is exactly what lets node
``i`` cross-check the point ``alpha = f(m, i)`` received in an ``echo``
from node ``m`` against the public commitment.

The paper notes that using a symmetric rather than a general bivariate
polynomial yields a constant-factor complexity reduction; we implement
both so the ablation benchmark (E9) can measure that factor.

Like :mod:`repro.crypto.polynomials`, everything here lives in the
scalar field Z_q and is therefore shared verbatim by every group
backend; only the *commitments* to these polynomials
(:mod:`repro.crypto.feldman`, :mod:`repro.crypto.pedersen`) touch
group elements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.polynomials import Polynomial


@dataclass(frozen=True)
class BivariatePolynomial:
    """A bivariate polynomial f(x,y) = sum_{j,l} coeffs[j][l] x^j y^l over Z_q.

    ``coeffs`` is a (t+1) x (t+1) tuple-of-tuples.  Instances may be
    symmetric (``coeffs[j][l] == coeffs[l][j]``) or general; HybridVSS
    uses the symmetric case.
    """

    coeffs: tuple[tuple[int, ...], ...]
    q: int

    def __post_init__(self) -> None:
        reduced = tuple(
            tuple(c % self.q for c in row) for row in self.coeffs
        )
        if any(len(row) != len(reduced) for row in reduced):
            raise ValueError("coefficient matrix must be square")
        object.__setattr__(self, "coeffs", reduced)

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def secret(self) -> int:
        """f(0, 0) = f_00 — the shared secret."""
        return self.coeffs[0][0]

    def is_symmetric(self) -> bool:
        t = self.degree
        return all(
            self.coeffs[j][l] == self.coeffs[l][j]
            for j in range(t + 1)
            for l in range(j + 1, t + 1)
        )

    def evaluate(self, x: int, y: int) -> int:
        """f(x, y) mod q via nested Horner evaluation."""
        acc = 0
        for row in reversed(self.coeffs):
            inner = 0
            for c in reversed(row):
                inner = (inner * y + c) % self.q
            acc = (acc * x + inner) % self.q
        return acc

    def row_polynomial(self, x: int) -> Polynomial:
        """a_x(y) = f(x, y) as a univariate polynomial in y.

        This is the polynomial the dealer sends to node ``P_x``.
        """
        t = self.degree
        xs = [pow(x, j, self.q) for j in range(t + 1)]
        coeffs = []
        for l in range(t + 1):
            coeffs.append(
                sum(self.coeffs[j][l] * xs[j] for j in range(t + 1)) % self.q
            )
        return Polynomial(tuple(coeffs), self.q)

    def column_polynomial(self, y: int) -> Polynomial:
        """f(x, y) as a univariate polynomial in x (equals row for symmetric f)."""
        t = self.degree
        ys = [pow(y, l, self.q) for l in range(t + 1)]
        coeffs = []
        for j in range(t + 1):
            coeffs.append(
                sum(self.coeffs[j][l] * ys[l] for l in range(t + 1)) % self.q
            )
        return Polynomial(tuple(coeffs), self.q)

    @classmethod
    def random_symmetric(
        cls,
        degree: int,
        q: int,
        rng: random.Random,
        secret: int | None = None,
    ) -> "BivariatePolynomial":
        """Uniformly random symmetric bivariate polynomial of the given
        degree, optionally with fixed f_00 = secret (Fig. 1, dealer step)."""
        t = degree
        coeffs = [[0] * (t + 1) for _ in range(t + 1)]
        for j in range(t + 1):
            for l in range(j, t + 1):
                c = rng.randrange(q)
                coeffs[j][l] = c
                coeffs[l][j] = c
        if secret is not None:
            coeffs[0][0] = secret % q
        return cls(tuple(tuple(row) for row in coeffs), q)

    @classmethod
    def random_general(
        cls,
        degree: int,
        q: int,
        rng: random.Random,
        secret: int | None = None,
    ) -> "BivariatePolynomial":
        """Uniformly random (not necessarily symmetric) bivariate
        polynomial — the AVSS baseline for the E9 ablation."""
        t = degree
        coeffs = [[rng.randrange(q) for _ in range(t + 1)] for _ in range(t + 1)]
        if secret is not None:
            coeffs[0][0] = secret % q
        return cls(tuple(tuple(row) for row in coeffs), q)
