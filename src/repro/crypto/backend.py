"""The pluggable group-backend interface.

The paper's protocols are defined over *any* prime-order group in which
discrete log is hard; everything the VSS/DKG/proactive/service stack
actually needs from that group is the small operation set captured by
:class:`AbstractGroup`.  Two backends implement it:

* :class:`repro.crypto.groups.SchnorrGroup` — multiplicative subgroups
  of Z_p^* with plain-int elements (the original representation, kept
  bit-for-bit compatible);
* :class:`repro.crypto.ec.EcGroup` — secp256k1 with
  :class:`~repro.crypto.ec.EcPoint` elements, ~an order of magnitude
  cheaper per exponentiation and 8x smaller wire elements at the same
  ~128-bit security level.

Protocol code never touches element internals: elements are opaque
hashable values produced and consumed by group methods, the
multiplicative vocabulary (``power``/``mul``/``commit``) is shared by
both backends, and the multiexp engines are reached through
``group.multiexp`` / ``group.fixed_base`` / ``group.shared_bases`` /
``group.batch_verifier`` instead of the int-typed module functions.

:class:`BatchedClaimVerifier` is the backend-generic realization of the
randomized-linear-combination batch check (it replaces the int-typed
``BatchVerifier`` that used to live in :mod:`repro.crypto.multiexp`);
for the modp backend it reproduces that original's Fiat--Shamir weights
bit for bit, so seeded simulations are unchanged by the refactor.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import Any, Protocol, runtime_checkable

from repro.crypto import metering, parallel
from repro.obs import metrics as obs_metrics


@runtime_checkable
class AbstractGroup(Protocol):
    """The operations the protocols require from a group backend.

    Elements are opaque, immutable, hashable values (``int`` for modp,
    :class:`~repro.crypto.ec.EcPoint` for secp256k1); scalars are plain
    ints in ``[0, q)``.  ``power``/``mul``/``commit`` use multiplicative
    vocabulary regardless of the backend's native notation.
    """

    name: str

    # scalar field Z_q
    @property
    def q(self) -> int: ...
    def scalar(self, x: int) -> int: ...
    def scalar_add(self, a: int, b: int) -> int: ...
    def scalar_sub(self, a: int, b: int) -> int: ...
    def scalar_mul(self, a: int, b: int) -> int: ...
    def scalar_neg(self, a: int) -> int: ...
    def scalar_inv(self, a: int) -> int: ...
    def random_scalar(self, rng: random.Random) -> int: ...
    def random_nonzero_scalar(self, rng: random.Random) -> int: ...

    # group operations
    @property
    def g(self) -> Any: ...
    @property
    def identity(self) -> Any: ...
    def power(self, base: Any, exponent: int) -> Any: ...
    def commit(self, exponent: int) -> Any: ...
    def mul(self, a: Any, b: Any) -> Any: ...
    def inv(self, a: Any) -> Any: ...
    def is_element(self, a: Any) -> bool: ...

    # multiexp engines
    def multiexp(self, pairs: Any) -> Any: ...
    def fixed_base(self, base: Any) -> Any: ...
    def shared_bases(self, bases: Any) -> Any: ...
    def batch_verifier(self, entries: Any, base: Any = None) -> Any: ...

    # serialization with stable sizes (communication metering)
    @property
    def element_bytes(self) -> int: ...
    @property
    def scalar_bytes(self) -> int: ...
    @property
    def security_bits(self) -> int: ...
    def element_to_bytes(self, a: Any) -> bytes: ...
    def element_from_bytes(self, raw: bytes) -> Any: ...
    def element_decode(self, raw: bytes) -> Any: ...
    def scalar_to_bytes(self, x: int) -> bytes: ...
    def scalar_from_bytes(self, raw: bytes) -> int: ...

    # hashing into the group / scalar field
    def hash_to_scalar(self, *parts: bytes) -> int: ...
    def hash_to_element(self, *parts: bytes) -> Any: ...
    def second_generator(self, label: bytes = ...) -> Any: ...

    def validate(self) -> None: ...


def element_hex(group: AbstractGroup, element: Any) -> str:
    """Canonical hex display of a group element (CLI / JSON output)."""
    return group.element_to_bytes(element).hex()


class BatchedClaimVerifier:
    """Backend-generic randomized-linear-combination verification of
    many claims ``base^{v_i} == prod_l E_l^{i^l}`` against one entry
    vector ``E``.

    With nonzero Fiat--Shamir weights ``gamma_i`` the combined check

        base^{sum_i gamma_i v_i} == prod_l E_l^{sum_i gamma_i i^l}

    costs one fixed-base exponentiation plus one ``len(E)``-term
    multiexp regardless of batch size.  The weights are hashed from the
    entry vector and the claims themselves, so a corrupted claim
    re-randomizes every gamma and errors cannot be chosen to cancel —
    soundness (~1/q per item) does not rest on the salt being
    unpredictable, and seeded simulations stay deterministic.  A failed
    batch falls back to per-item checks that pinpoint the bad indices.
    """

    def __init__(
        self,
        group: AbstractGroup,
        entries: Sequence[Any],
        base: Any = None,
        rng: random.Random | None = None,
    ):
        self.group = group
        self.entries = tuple(entries)
        self.base = base if base is not None else group.g
        self.rng = rng or random.Random()
        self._shared: Any = None

    def _shared_bases(self) -> Any:
        if self._shared is None:
            self._shared = self.group.shared_bases(self.entries)
        return self._shared

    def check_one(self, index: int, value: int) -> bool:
        """Single-claim check via the shared tables (the fallback path)."""
        lhs = self.group.fixed_base(self.base).pow(value)
        return lhs == self._shared_bases().power_row(index)

    def _weights(self, batch: list[tuple[int, int]], salt: int) -> list[int]:
        """Fiat--Shamir weights hashed from the entries and the claims
        themselves — errors cannot be chosen to cancel, so soundness
        does not rest on the salt being unpredictable."""
        group = self.group
        q = group.q
        h = hashlib.sha256()
        h.update(b"rlc-weights|" + salt.to_bytes(16, "big"))
        for entry in self.entries:
            h.update(group.element_to_bytes(entry))
        for index, value in batch:
            h.update(group.scalar_to_bytes(index))
            h.update(group.scalar_to_bytes(value))
        seed = h.digest()
        weights = []
        for i in range(len(batch)):
            digest = hashlib.sha256(seed + i.to_bytes(4, "big")).digest()
            weights.append(int.from_bytes(digest, "big") % (q - 1) + 1)
        return weights

    def verify(
        self,
        items: Sequence[tuple[int, int]],
        rng: random.Random | None = None,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Verify ``(index, value)`` claims; returns ``(good, bad_indices)``.

        Duplicate indices keep only the first occurrence; ``rng``
        overrides the weight-salt source for deterministic protocol runs.
        """
        rng = rng if rng is not None else self.rng
        unique: dict[int, int] = {}
        for index, value in items:
            unique.setdefault(index, value)
        batch = list(unique.items())
        if not batch:
            return [], []
        if len(batch) == 1:
            index, value = batch[0]
            if self.check_one(index, value):
                return batch, []
            return [], [index]
        # One salt draw regardless of execution mode: the parallel path
        # derives per-chunk salts from this single draw, so the caller's
        # rng stream — and therefore seeded transcripts — are identical
        # whether or not a process pool is installed.
        salt = rng.getrandbits(128)
        executor = parallel.active_executor()
        if executor is not None and executor.wants_claims(len(batch)):
            result = executor.verify_claims(
                self.group, self.entries, self.base, batch, salt
            )
            if result is not None:
                return result
        good, bad, _ = self.verify_salted(batch, salt)
        return good, bad

    def verify_salted(
        self, batch: list[tuple[int, int]], salt: int
    ) -> tuple[list[tuple[int, int]], list[int], bool]:
        """The serial RLC check over an already-deduplicated batch with
        an explicit weight salt; returns ``(good, bad, fell_back)``.

        This is also the in-worker body of one parallel chunk (see
        :mod:`repro.crypto.parallel`): per-item fallback runs inside
        the chunk, so Byzantine claims still pinpoint their senders.
        """
        group = self.group
        q = group.q
        lhs_exp = 0
        agg = [0] * len(self.entries)
        weights = self._weights(batch, salt=salt)
        for gamma, (index, value) in zip(weights, batch):
            lhs_exp = (lhs_exp + gamma * value) % q
            ip = gamma % q
            for ell in range(len(self.entries)):
                agg[ell] = (agg[ell] + ip) % q
                ip = ip * index % q
        lhs = group.fixed_base(self.base).pow(lhs_exp)
        rhs = group.multiexp(zip(self.entries, agg))
        backend = "secp256k1" if group.name == "secp256k1" else "modp"
        if lhs == rhs:
            obs_metrics.counter_inc(
                metering.BATCH_VERIFY,
                help="batch-verify outcomes",
                backend=backend,
                outcome="batch_ok",
            )
            return batch, [], False
        obs_metrics.counter_inc(
            metering.BATCH_VERIFY,
            help="batch-verify outcomes",
            backend=backend,
            outcome="fallback",
        )
        good: list[tuple[int, int]] = []
        bad: list[int] = []
        for index, value in batch:
            if self.check_one(index, value):
                good.append((index, value))
            else:
                bad.append(index)
        return good, bad, True
