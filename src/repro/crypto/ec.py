"""secp256k1: the elliptic-curve group backend.

The protocols of the paper are defined over any prime-order group in
which discrete log is hard; :mod:`repro.crypto.groups` realizes that
setting with Schnorr subgroups of Z_p^*, where 128-bit security costs
2048-bit field arithmetic.  This module realizes the *same* abstract
interface (:mod:`repro.crypto.backend`) over secp256k1, where 128-bit
security costs 256-bit field arithmetic — roughly an order of magnitude
cheaper per group operation and 8x smaller wire elements (33-byte
compressed points against 256-byte residues).

The arithmetic core mirrors :mod:`repro.crypto.multiexp` term for term:

* Jacobian-coordinate point addition/doubling (no per-step inversions;
  the ``a = 0`` short-Weierstrass doubling shortcut applies);
* width-5 wNAF scalar multiplication with a batch-normalized affine
  table of odd multiples (:func:`scalar_mul`);
* Straus interleaved-window / Pippenger bucket multi-scalar
  multiplication (:func:`ec_multiexp`), reusing the window cost models
  of the int engine;
* windowed fixed-base tables (:class:`EcFixedBaseTable`) and reusable
  Straus tables for a fixed base vector (:class:`EcSharedBases`),
  cached process-wide exactly like their modp counterparts.

Group elements are immutable :class:`EcPoint` values (affine, with a
single :data:`INFINITY` identity), so they hash and compare exactly
like the plain ints of the modp backend and flow through commitments,
wire frames and caches unchanged.

Like :mod:`repro.crypto.intops` (the gmpy2 seam), this module probes
for an optional native backend at import time: when ``coincurve``
(libsecp256k1 bindings) is importable, :func:`scalar_mul` and
:func:`ec_multiexp` dispatch to it through module-level indirections
(``_scalar_mul_impl`` / ``_ec_multiexp_impl``).  The group math is
exact on both sides, so results are bit-identical — asserted by
``tests/crypto/test_ec_probe.py`` whenever the native library is
present — and the pure-python path remains fully supported.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto import metering, parallel
from repro.crypto.multiexp import (
    PIPPENGER_CUTOFF,
    _pippenger_window,
    _straus_window,
)

try:  # soft probe: libsecp256k1 bindings, exercised in the accelerated CI lane
    from coincurve import PublicKey as _NativeKey

    HAVE_COINCURVE = True
except ImportError:
    _NativeKey = None
    HAVE_COINCURVE = False

# secp256k1 domain parameters (SEC 2 v2, section 2.4.1).
P = 2**256 - 2**32 - 977
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

POINT_BYTES = 33  # compressed SEC1: parity prefix + 32-byte x
SCALAR_BYTES = 32

_INF_BYTES = bytes(POINT_BYTES)  # all-zero encoding for the identity


class EcPoint:
    """An immutable affine secp256k1 point; ``INFINITY`` is the identity.

    Hashable and comparable by coordinates, so points serve as dict
    keys, commitment-matrix entries and ``lru_cache`` keys exactly like
    the plain ints of the modp backend.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: int | None, y: int | None):
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EcPoint is immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EcPoint)
            and self.x == other.x
            and self.y == other.y
        )

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def is_infinity(self) -> bool:
        return self.x is None

    def __reduce__(self):
        # Coordinate-preserving pickling: __slots__ plus the frozen
        # __setattr__ defeat the default protocol, and the process-pool
        # executor ships points between workers.
        return (EcPoint, (self.x, self.y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.x is None:
            return "EcPoint(infinity)"
        return f"EcPoint(x={self.x:#x})"


INFINITY = EcPoint(None, None)
GENERATOR = EcPoint(GX, GY)

_JAC_INF = (1, 1, 0)  # Z = 0 marks the point at infinity in Jacobian form


# -- Jacobian-coordinate arithmetic (no inversions in the hot loops) -----------


def _jac_double(X1: int, Y1: int, Z1: int) -> tuple[int, int, int]:
    """dbl-2009-l for a = 0: 2M + 5S per doubling."""
    if not Z1 or not Y1:
        return _JAC_INF
    A = X1 * X1 % P
    Bv = Y1 * Y1 % P
    C = Bv * Bv % P
    s = X1 + Bv
    D = 2 * (s * s - A - C) % P
    E = 3 * A % P
    F = E * E % P
    X3 = (F - 2 * D) % P
    Y3 = (E * (D - X3) - 8 * C) % P
    Z3 = 2 * Y1 * Z1 % P
    return (X3, Y3, Z3)


def _jac_add(
    p1: tuple[int, int, int], p2: tuple[int, int, int]
) -> tuple[int, int, int]:
    """add-2007-bl general Jacobian addition."""
    X1, Y1, Z1 = p1
    X2, Y2, Z2 = p2
    if not Z1:
        return p2
    if not Z2:
        return p1
    Z1Z1 = Z1 * Z1 % P
    Z2Z2 = Z2 * Z2 % P
    U1 = X1 * Z2Z2 % P
    U2 = X2 * Z1Z1 % P
    S1 = Y1 * Z2 * Z2Z2 % P
    S2 = Y2 * Z1 * Z1Z1 % P
    if U1 == U2:
        if S1 != S2:
            return _JAC_INF
        return _jac_double(X1, Y1, Z1)
    H = (U2 - U1) % P
    I = 4 * H * H % P
    J = H * I % P
    r = 2 * (S2 - S1) % P
    V = U1 * I % P
    X3 = (r * r - J - 2 * V) % P
    Y3 = (r * (V - X3) - 2 * S1 * J) % P
    zs = Z1 + Z2
    Z3 = (zs * zs - Z1Z1 - Z2Z2) * H % P
    return (X3, Y3, Z3)


def _jac_add_affine(
    p1: tuple[int, int, int], x2: int, y2: int
) -> tuple[int, int, int]:
    """madd-2007-bl mixed addition (second operand affine, Z2 = 1)."""
    X1, Y1, Z1 = p1
    if not Z1:
        return (x2, y2, 1)
    Z1Z1 = Z1 * Z1 % P
    U2 = x2 * Z1Z1 % P
    S2 = y2 * Z1 * Z1Z1 % P
    if U2 == X1:
        if S2 != Y1:
            return _JAC_INF
        return _jac_double(X1, Y1, Z1)
    H = (U2 - X1) % P
    HH = H * H % P
    I = 4 * HH % P
    J = H * I % P
    r = 2 * (S2 - Y1) % P
    V = X1 * I % P
    X3 = (r * r - J - 2 * V) % P
    Y3 = (r * (V - X3) - 2 * Y1 * J) % P
    zh = Z1 + H
    Z3 = (zh * zh - Z1Z1 - HH) % P
    return (X3, Y3, Z3)


def _batch_to_affine(
    points: list[tuple[int, int, int]],
) -> list[tuple[int, int] | None]:
    """Normalize many Jacobian points with ONE field inversion
    (Montgomery's trick); infinity entries come back as ``None``."""
    zs = [pt[2] for pt in points]
    prefix = []
    acc = 1
    for z in zs:
        prefix.append(acc)
        if z:
            acc = acc * z % P
    inv_acc = pow(acc, P - 2, P)
    out: list[tuple[int, int] | None] = [None] * len(points)
    for i in range(len(points) - 1, -1, -1):
        z = zs[i]
        if not z:
            continue
        z_inv = prefix[i] * inv_acc % P
        inv_acc = inv_acc * z % P
        X, Y, _ = points[i]
        zi2 = z_inv * z_inv % P
        out[i] = (X * zi2 % P, Y * zi2 * z_inv % P)
    return out


def _from_jacobian(pt: tuple[int, int, int]) -> EcPoint:
    X, Y, Z = pt
    if not Z:
        return INFINITY
    z_inv = pow(Z, P - 2, P)
    zi2 = z_inv * z_inv % P
    return EcPoint(X * zi2 % P, Y * zi2 * z_inv % P)


# -- scalar multiplication -----------------------------------------------------


def _wnaf(k: int, width: int) -> list[int]:
    """Width-``width`` non-adjacent form, little-endian digit list."""
    digits = []
    while k:
        if k & 1:
            d = k & ((1 << (width + 1)) - 1)
            if d >= 1 << width:
                d -= 1 << (width + 1)
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def _odd_multiples(point: EcPoint, count: int) -> list[tuple[int, int]]:
    """Affine [1P, 3P, 5P, ...] (``count`` entries), batch-normalized."""
    base = (point.x, point.y, 1)
    twice = _jac_double(*base)
    rows = [base]
    for _ in range(count - 1):
        rows.append(_jac_add(rows[-1], twice))
    affine = _batch_to_affine(rows)
    # Odd multiples of a non-identity point in a prime-order group can
    # never hit infinity, so every entry is a concrete pair.
    return [entry for entry in affine if entry is not None]


def _scalar_mul_python(point: EcPoint, k: int) -> EcPoint:
    """``k * point`` via width-5 wNAF over a batch-normalized odd-multiple
    table: ~256 doublings plus ~43 mixed additions per call."""
    k %= N
    if k == 0 or point.is_infinity():
        return INFINITY
    table = _odd_multiples(point, 16)  # 1P, 3P, ..., 31P
    p = P
    X1, Y1, Z1 = _JAC_INF
    for d in reversed(_wnaf(k, 5)):
        if Z1:  # inlined _jac_double — the per-bit hot path
            A = X1 * X1 % p
            Bv = Y1 * Y1 % p
            C = Bv * Bv % p
            sm = X1 + Bv
            D = 2 * (sm * sm - A - C) % p
            E = 3 * A % p
            X3 = (E * E - 2 * D) % p
            Z1 = 2 * Y1 * Z1 % p
            Y1 = (E * (D - X3) - 8 * C) % p
            X1 = X3
        if d:
            x, y = table[abs(d) >> 1]
            X1, Y1, Z1 = _jac_add_affine(
                (X1, Y1, Z1), x, y if d > 0 else p - y
            )
    return _from_jacobian((X1, Y1, Z1))


def _uncompressed_sec1(point: EcPoint) -> bytes:
    """65-byte uncompressed SEC1 (native-library input; no sqrt needed)."""
    return b"\x04" + point.x.to_bytes(32, "big") + point.y.to_bytes(32, "big")


def _scalar_mul_coincurve(point: EcPoint, k: int) -> EcPoint:
    """``k * point`` through libsecp256k1.  The group law is exact on
    both sides of the seam, so this is bit-identical to the wNAF path
    (asserted in ``tests/crypto/test_ec_probe.py``)."""
    k %= N
    if k == 0 or point.is_infinity():
        return INFINITY
    key = _NativeKey(_uncompressed_sec1(point)).multiply(k.to_bytes(32, "big"))
    x, y = key.point()
    return EcPoint(x, y)


# Module-level indirection, exactly like intops._powmod_impl: tests swap
# the implementation to exercise both sides of the probe.
_scalar_mul_impl = _scalar_mul_coincurve if HAVE_COINCURVE else _scalar_mul_python


def scalar_mul(point: EcPoint, k: int) -> EcPoint:
    """``k * point`` via the probed backend (libsecp256k1 when
    importable, pure-python wNAF otherwise)."""
    return _scalar_mul_impl(point, k)


def scalar_mul_naive(point: EcPoint, k: int) -> EcPoint:
    """Textbook double-and-add; the cross-check oracle for the wNAF path."""
    k %= N
    acc = _JAC_INF
    addend = (point.x, point.y, 1) if not point.is_infinity() else _JAC_INF
    while k:
        if k & 1:
            acc = _jac_add(acc, addend)
        addend = _jac_double(*addend)
        k >>= 1
    return _from_jacobian(acc)


def point_add(a: EcPoint, b: EcPoint) -> EcPoint:
    """Affine point addition (the group law; one inversion per call)."""
    if a.is_infinity():
        return b
    if b.is_infinity():
        return a
    if a.x == b.x:
        if (a.y + b.y) % P == 0:
            return INFINITY
        slope = (3 * a.x * a.x) * pow(2 * a.y, P - 2, P) % P
    else:
        slope = (b.y - a.y) * pow(b.x - a.x, P - 2, P) % P
    x3 = (slope * slope - a.x - b.x) % P
    y3 = (slope * (a.x - x3) - a.y) % P
    return EcPoint(x3, y3)


def point_neg(a: EcPoint) -> EcPoint:
    if a.is_infinity():
        return INFINITY
    return EcPoint(a.x, (-a.y) % P)


def is_on_curve(a: EcPoint) -> bool:
    if a.is_infinity():
        return True
    if a.x is None or not (0 <= a.x < P and 0 <= a.y < P):
        return False
    return (a.y * a.y - (a.x * a.x * a.x + B)) % P == 0


# -- multi-scalar multiplication ----------------------------------------------


def _straus_points(
    points: list[EcPoint], exps: list[int]
) -> tuple[int, int, int]:
    """Straus interleaved windows: one shared doubling chain."""
    bits = max(e.bit_length() for e in exps)
    w = _straus_window(bits, len(points))
    mask = (1 << w) - 1
    # tables[i][d - 1] = (d+1) * points[i] affine, one batch inversion
    # across every table entry of every point.
    rows: list[tuple[int, int, int]] = []
    for pt in points:
        base = (pt.x, pt.y, 1)
        cur = base
        rows.append(cur)
        for _ in range(mask - 1):
            cur = _jac_add(cur, base)
            rows.append(cur)
    affine = _batch_to_affine(rows)
    p = P
    X1, Y1, Z1 = _JAC_INF
    for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
        if Z1:  # inlined _jac_double, w times
            for _ in range(w):
                A = X1 * X1 % p
                Bv = Y1 * Y1 % p
                C = Bv * Bv % p
                sm = X1 + Bv
                D = 2 * (sm * sm - A - C) % p
                E = 3 * A % p
                X3 = (E * E - 2 * D) % p
                Z1 = 2 * Y1 * Z1 % p
                Y1 = (E * (D - X3) - 8 * C) % p
                X1 = X3
        for i, e in enumerate(exps):
            d = (e >> shift) & mask
            if d:
                entry = affine[i * mask + d - 1]
                if entry is not None:
                    X1, Y1, Z1 = _jac_add_affine(
                        (X1, Y1, Z1), entry[0], entry[1]
                    )
    return (X1, Y1, Z1)


def _pippenger_points(
    points: list[EcPoint], exps: list[int]
) -> tuple[int, int, int]:
    """Pippenger buckets with the running-sum fold, in Jacobian form."""
    bits = max(e.bit_length() for e in exps)
    w = _pippenger_window(bits, len(points))
    mask = (1 << w) - 1
    acc = _JAC_INF
    for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
        if acc[2]:
            for _ in range(w):
                acc = _jac_double(*acc)
        buckets: dict[int, tuple[int, int, int]] = {}
        for pt, e in zip(points, exps):
            d = (e >> shift) & mask
            if d:
                cur = buckets.get(d)
                jac = (pt.x, pt.y, 1)
                buckets[d] = jac if cur is None else _jac_add(cur, jac)
        running = _JAC_INF
        window_acc = _JAC_INF
        for d in range(mask, 0, -1):
            bucket = buckets.get(d)
            if bucket is not None:
                running = _jac_add(running, bucket)
            if running[2]:
                window_acc = _jac_add(window_acc, running)
        acc = _jac_add(acc, window_acc)
    return acc


def _ec_multiexp_python(points: list[EcPoint], exps: list[int]) -> EcPoint:
    if len(points) >= PIPPENGER_CUTOFF:
        return _from_jacobian(_pippenger_points(points, exps))
    return _from_jacobian(_straus_points(points, exps))


def _ec_multiexp_coincurve(points: list[EcPoint], exps: list[int]) -> EcPoint:
    """``sum_i exps[i] * points[i]`` as native multiplies + one combine.

    libsecp256k1 has no multi-scalar API, but n native multiplications
    beat the shared-doubling python engines at any n.  The only
    unrepresentable value is the identity (``pubkey_combine`` rejects
    it), which maps back to :data:`INFINITY`.
    """
    keys = [
        _NativeKey(_uncompressed_sec1(pt)).multiply(e.to_bytes(32, "big"))
        for pt, e in zip(points, exps)
    ]
    try:
        x, y = _NativeKey.combine_keys(keys).point()
    except ValueError:
        return INFINITY
    return EcPoint(x, y)


_ec_multiexp_impl = (
    _ec_multiexp_coincurve if HAVE_COINCURVE else _ec_multiexp_python
)


def ec_multiexp(pairs) -> EcPoint:
    """``sum_i exps[i] * points[i]``; exponents reduced mod the order."""
    points: list[EcPoint] = []
    exps: list[int] = []
    for point, exp in pairs:
        exp %= N
        if exp == 0 or point.is_infinity():
            continue
        points.append(point)
        exps.append(exp)
    if not points:
        return INFINITY
    if len(points) == 1:
        return scalar_mul(points[0], exps[0])
    return _ec_multiexp_impl(points, exps)


class EcFixedBaseTable:
    """Windowed fixed-base scalar multiplication: after the one-time
    table build, ``pow(e)`` costs ~``|n|/window`` mixed additions and
    zero doublings — the EC mirror of
    :class:`repro.crypto.multiexp.FixedBaseTable`."""

    __slots__ = ("base", "window", "_rows")

    def __init__(self, base: EcPoint, window: int = 5):
        self.base = base
        self.window = window
        self._rows: list[list[tuple[int, int] | None]] = []
        if base.is_infinity():
            return
        windows = -(-N.bit_length() // window)
        flat: list[tuple[int, int, int]] = []
        unit = (base.x, base.y, 1)
        per_row = (1 << window) - 1
        for _ in range(windows):
            cur = unit
            flat.append(cur)
            for _ in range(per_row - 1):
                cur = _jac_add(cur, unit)
                flat.append(cur)
            unit = _jac_add(cur, unit)  # base * 2^(window * (k+1))
        affine = _batch_to_affine(flat)
        for k in range(windows):
            self._rows.append(affine[k * per_row : (k + 1) * per_row])

    def pow(self, exponent: int) -> EcPoint:
        """``exponent * base`` (exponent reduced mod the group order)."""
        e = exponent % N
        acc = _JAC_INF
        mask = (1 << self.window) - 1
        for row in self._rows:
            if e == 0:
                break
            d = e & mask
            if d:
                entry = row[d - 1]
                if entry is not None:
                    acc = _jac_add_affine(acc, entry[0], entry[1])
            e >>= self.window
        return _from_jacobian(acc)


@lru_cache(maxsize=128)
def ec_fixed_base(base: EcPoint, window: int = 5) -> EcFixedBaseTable:
    """Process-wide fixed-base table cache (generator, Pedersen ``h``,
    long-lived public keys), keyed by the point itself."""
    return EcFixedBaseTable(base, window)


class EcSharedBases:
    """Straus tables for a fixed base vector reused across many scalar
    vectors — the EC mirror of :class:`repro.crypto.multiexp.SharedBases`."""

    __slots__ = ("window", "count", "_mask", "_tables")

    def __init__(self, bases, window: int = 4):
        bases = list(bases)
        self.window = window
        self.count = len(bases)
        self._mask = (1 << window) - 1
        flat: list[tuple[int, int, int]] = []
        for pt in bases:
            if pt.is_infinity():
                # Degenerate base: every digit entry normalizes to None
                # and contributes nothing.
                flat.extend([_JAC_INF] * self._mask)
                continue
            base = (pt.x, pt.y, 1)
            cur = base
            flat.append(cur)
            for _ in range(self._mask - 1):
                cur = _jac_add(cur, base)
                flat.append(cur)
        affine = _batch_to_affine(flat)
        self._tables = [
            affine[i * self._mask : (i + 1) * self._mask]
            for i in range(self.count)
        ]

    def multiexp(self, exps) -> EcPoint:
        """``sum_i exps[i] * bases[i]`` using the shared tables."""
        exps = [e % N for e in exps]
        if len(exps) != self.count:
            raise ValueError("exponent vector length mismatch")
        bits = max((e.bit_length() for e in exps), default=0)
        if bits == 0:
            return INFINITY
        w, mask = self.window, self._mask
        p = P
        tables = self._tables
        X1, Y1, Z1 = _JAC_INF
        for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
            if Z1:  # inlined _jac_double, w times
                for _ in range(w):
                    A = X1 * X1 % p
                    Bv = Y1 * Y1 % p
                    C = Bv * Bv % p
                    sm = X1 + Bv
                    D = 2 * (sm * sm - A - C) % p
                    E = 3 * A % p
                    X3 = (E * E - 2 * D) % p
                    Z1 = 2 * Y1 * Z1 % p
                    Y1 = (E * (D - X3) - 8 * C) % p
                    X1 = X3
            for table, e in zip(tables, exps):
                d = (e >> shift) & mask
                if d:
                    entry = table[d - 1]
                    if entry is not None:
                        X1, Y1, Z1 = _jac_add_affine(
                            (X1, Y1, Z1), entry[0], entry[1]
                        )
        return _from_jacobian((X1, Y1, Z1))

    def power_row(self, x: int) -> EcPoint:
        """``sum_i x^i * bases[i]``: the committed polynomial evaluated
        in the exponent at ``x``."""
        exps = []
        xp = 1
        for _ in range(self.count):
            exps.append(xp)
            xp = xp * x % N
        return self.multiexp(exps)


# -- the group object ---------------------------------------------------------


def _sqrt_mod_p(a: int) -> int | None:
    """Square root mod P (P = 3 mod 4), or None if ``a`` is a non-residue."""
    root = pow(a, (P + 1) // 4, P)
    if root * root % P != a % P:
        return None
    return root


@dataclass(frozen=True)
class EcGroup:
    """secp256k1 behind the :class:`repro.crypto.backend.AbstractGroup`
    interface.

    The API keeps the multiplicative vocabulary of
    :class:`~repro.crypto.groups.SchnorrGroup` (``power``, ``mul``,
    ``commit``) so protocol code is backend-blind: "exponentiation" is
    scalar multiplication and "multiplication" is point addition.
    """

    name: str = "secp256k1"

    # -- scalar field (Z_n) ------------------------------------------------

    @property
    def q(self) -> int:
        return N

    def scalar(self, x: int) -> int:
        return x % N

    def scalar_add(self, a: int, b: int) -> int:
        return (a + b) % N

    def scalar_sub(self, a: int, b: int) -> int:
        return (a - b) % N

    def scalar_mul(self, a: int, b: int) -> int:
        return (a * b) % N

    def scalar_neg(self, a: int) -> int:
        return (-a) % N

    def scalar_inv(self, a: int) -> int:
        if a % N == 0:
            raise ZeroDivisionError("0 has no inverse in Z_q")
        return pow(a, -1, N)

    def random_scalar(self, rng: random.Random) -> int:
        return rng.randrange(N)

    def random_nonzero_scalar(self, rng: random.Random) -> int:
        return rng.randrange(1, N)

    # -- group -------------------------------------------------------------

    @property
    def g(self) -> EcPoint:
        return GENERATOR

    @property
    def identity(self) -> EcPoint:
        return INFINITY

    def power(self, base: EcPoint, exponent: int) -> EcPoint:
        metering.EC.power += 1
        return scalar_mul(base, exponent)

    def commit(self, exponent: int) -> EcPoint:
        metering.EC.commit += 1
        return ec_fixed_base(GENERATOR).pow(exponent)

    def mul(self, a: EcPoint, b: EcPoint) -> EcPoint:
        return point_add(a, b)

    def inv(self, a: EcPoint) -> EcPoint:
        return point_neg(a)

    def is_element(self, a: object) -> bool:
        return isinstance(a, EcPoint) and is_on_curve(a)

    # -- engines -----------------------------------------------------------

    def multiexp(self, pairs) -> EcPoint:
        metering.EC.multiexp += 1
        executor = parallel.active_executor()
        if executor is not None and executor.parallel:
            pairs = list(pairs)
            if executor.wants_terms(len(pairs)):
                result = executor.multiexp(self, pairs)
                if result is not None:
                    return result
        return ec_multiexp(pairs)

    def fixed_base(self, base: EcPoint) -> EcFixedBaseTable:
        return ec_fixed_base(base)

    def shared_bases(self, bases) -> EcSharedBases:
        return EcSharedBases(bases)

    def batch_verifier(self, entries, base: EcPoint | None = None):
        from repro.crypto.backend import BatchedClaimVerifier

        return BatchedClaimVerifier(self, entries, base)

    # -- sizes -------------------------------------------------------------

    @property
    def element_bytes(self) -> int:
        return POINT_BYTES

    @property
    def scalar_bytes(self) -> int:
        return SCALAR_BYTES

    @property
    def security_bits(self) -> int:
        return N.bit_length()

    # -- serialization -----------------------------------------------------

    def element_to_bytes(self, a: EcPoint) -> bytes:
        if a.is_infinity():
            return _INF_BYTES
        return bytes([2 + (a.y & 1)]) + a.x.to_bytes(32, "big")

    def element_from_bytes(self, raw: bytes) -> EcPoint:
        if len(raw) != POINT_BYTES:
            raise ValueError(f"expected {POINT_BYTES} bytes, got {len(raw)}")
        if raw == _INF_BYTES:
            return INFINITY
        prefix = raw[0]
        if prefix not in (2, 3):
            raise ValueError(f"bad point prefix {prefix:#x}")
        x = int.from_bytes(raw[1:], "big")
        if x >= P:
            raise ValueError("x coordinate out of range")
        y = _sqrt_mod_p((x * x * x + B) % P)
        if y is None:
            raise ValueError("x is not on the curve")
        if (y & 1) != (prefix & 1):
            y = P - y
        return EcPoint(x, y)

    def element_decode(self, raw: bytes) -> EcPoint:
        # Decompression is inherently validating (the x must be on the
        # curve), so the wire-grade decode is the strict parse.
        return self.element_from_bytes(raw)

    def scalar_to_bytes(self, x: int) -> bytes:
        return (x % N).to_bytes(SCALAR_BYTES, "big")

    def scalar_from_bytes(self, raw: bytes) -> int:
        return int.from_bytes(raw, "big") % N

    # -- hashing into the group --------------------------------------------

    def hash_to_scalar(self, *parts: bytes) -> int:
        h = hashlib.sha256()
        for part in parts:
            h.update(len(part).to_bytes(4, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % N

    def hash_to_element(self, *parts: bytes) -> EcPoint:
        """Try-and-increment hash-to-curve with canonical even-y choice
        (no known discrete log relative to the generator)."""
        counter = 0
        while True:
            h = hashlib.sha256()
            h.update(b"hash-to-curve|" + str(counter).encode() + b"|")
            for part in parts:
                h.update(len(part).to_bytes(4, "big"))
                h.update(part)
            x = int.from_bytes(h.digest(), "big") % P
            y = _sqrt_mod_p((x * x * x + B) % P)
            if y is not None and (x or y):
                return EcPoint(x, y if y % 2 == 0 else P - y)
            counter += 1

    def second_generator(self, label: bytes = b"pedersen-h") -> EcPoint:
        return _second_generator_cached(label)

    def validate(self) -> None:
        if not is_on_curve(GENERATOR):
            raise ValueError("generator is not on the curve")
        if not scalar_mul(GENERATOR, N).is_infinity():
            raise ValueError("generator order is not n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EcGroup({self.name}, |q|={N.bit_length()} bits)"


@lru_cache(maxsize=16)
def _second_generator_cached(label: bytes) -> EcPoint:
    group = secp256k1_group()
    counter = 0
    while True:
        h = group.hash_to_element(
            b"second-generator", label, counter.to_bytes(4, "big")
        )
        if not h.is_infinity() and h != GENERATOR:
            return h
        counter += 1


@lru_cache(maxsize=1)
def secp256k1_group() -> EcGroup:
    """The process-wide secp256k1 backend instance."""
    return EcGroup()
