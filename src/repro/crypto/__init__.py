"""Cryptographic substrate: discrete-log groups, polynomials, commitments,
signatures and zero-knowledge proofs.

Everything in this subpackage is pure (no simulator dependencies) and
deterministic given a seeded ``random.Random``.
"""

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.dleq import DleqProof
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector, share_verifier
from repro.crypto.multiexp import (
    BatchVerifier,
    FixedBaseTable,
    SharedBases,
    fixed_base_table,
    multiexp,
)
from repro.crypto.groups import (
    RFC5114_1024_160,
    SchnorrGroup,
    group_by_name,
    large_group,
    medium_group,
    small_group,
    toy_group,
)
from repro.crypto.pedersen import PedersenCommitment, PedersenShare, deal_pedersen
from repro.crypto.polynomials import (
    Polynomial,
    interpolate_at,
    interpolate_polynomial,
    lagrange_coefficients,
)
from repro.crypto.schnorr import Signature, SigningKey
from repro.crypto.shares import ReconstructionError, Share, reconstruct_secret

__all__ = [
    "BatchVerifier",
    "BivariatePolynomial",
    "DleqProof",
    "FeldmanCommitment",
    "FeldmanVector",
    "FixedBaseTable",
    "SharedBases",
    "fixed_base_table",
    "multiexp",
    "share_verifier",
    "PedersenCommitment",
    "PedersenShare",
    "Polynomial",
    "ReconstructionError",
    "RFC5114_1024_160",
    "SchnorrGroup",
    "Share",
    "Signature",
    "SigningKey",
    "deal_pedersen",
    "group_by_name",
    "interpolate_at",
    "interpolate_polynomial",
    "lagrange_coefficients",
    "large_group",
    "medium_group",
    "reconstruct_secret",
    "small_group",
    "toy_group",
]
