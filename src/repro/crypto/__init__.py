"""Cryptographic substrate: discrete-log groups, polynomials, commitments,
signatures and zero-knowledge proofs.

Everything in this subpackage is pure (no simulator dependencies) and
deterministic given a seeded ``random.Random``.  Group arithmetic is
pluggable: protocol code speaks the :class:`~repro.crypto.backend.AbstractGroup`
interface, realized by the modp :class:`~repro.crypto.groups.SchnorrGroup`
and the secp256k1 :class:`~repro.crypto.ec.EcGroup` backends.
"""

from repro.crypto.backend import (
    AbstractGroup,
    BatchedClaimVerifier,
    element_hex,
)
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.dleq import DleqProof
from repro.crypto.feldman import FeldmanCommitment, FeldmanVector, share_verifier
from repro.crypto.multiexp import (
    FixedBaseTable,
    SharedBases,
    fixed_base_table,
    multiexp,
)
from repro.crypto.ec import EcGroup, EcPoint, secp256k1_group
from repro.crypto.groups import (
    BACKENDS,
    RFC5114_1024_160,
    RFC5114_2048_256,
    SchnorrGroup,
    group_by_name,
    large_group,
    medium_group,
    small_group,
    toy_group,
)
from repro.crypto.parallel import (
    CryptoExecutor,
    acceleration_status,
    active_executor,
    executor_scope,
    set_executor,
)
from repro.crypto.pedersen import PedersenCommitment, PedersenShare, deal_pedersen
from repro.crypto.polynomials import (
    Polynomial,
    interpolate_at,
    interpolate_polynomial,
    lagrange_coefficients,
)
from repro.crypto.schnorr import Signature, SigningKey
from repro.crypto.shares import ReconstructionError, Share, reconstruct_secret

__all__ = [
    "AbstractGroup",
    "BACKENDS",
    "BatchedClaimVerifier",
    "EcGroup",
    "EcPoint",
    "element_hex",
    "secp256k1_group",
    "BivariatePolynomial",
    "CryptoExecutor",
    "DleqProof",
    "acceleration_status",
    "active_executor",
    "executor_scope",
    "set_executor",
    "FeldmanCommitment",
    "FeldmanVector",
    "FixedBaseTable",
    "SharedBases",
    "fixed_base_table",
    "multiexp",
    "share_verifier",
    "PedersenCommitment",
    "PedersenShare",
    "Polynomial",
    "ReconstructionError",
    "RFC5114_1024_160",
    "RFC5114_2048_256",
    "SchnorrGroup",
    "Share",
    "Signature",
    "SigningKey",
    "deal_pedersen",
    "group_by_name",
    "interpolate_at",
    "interpolate_polynomial",
    "lagrange_coefficients",
    "large_group",
    "medium_group",
    "reconstruct_secret",
    "small_group",
    "toy_group",
]
