"""Accelerated big-integer modular arithmetic with a soft gmpy2 probe.

The modp backend spends essentially all of its time in two operations:
modular exponentiation (``powmod``) and modular inversion (``invert``).
CPython's built-in ``pow`` is correct but an order of magnitude slower
than GMP at 2048-bit operand sizes.  This module probes for `gmpy2` at
import time and routes both operations through it when available —
a *soft* dependency: the image policy forbids adding packages, so the
pure-Python path must stay fully supported and bit-identical.

Only the dispatch lives here; all callers go through :func:`powmod` /
:func:`invert` so the acceleration is invisible behind the
:class:`repro.crypto.backend.AbstractGroup` interface.  Results are
asserted identical across both paths in ``tests/crypto/test_intops.py``
(the accelerated path is additionally cross-checked against the
builtin whenever the module is importable).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where gmpy2 is installed
    from gmpy2 import invert as _gmpy2_invert
    from gmpy2 import powmod as _gmpy2_powmod

    HAVE_GMPY2 = True
except ImportError:  # the common case: plain CPython arithmetic
    _gmpy2_powmod = None
    _gmpy2_invert = None
    HAVE_GMPY2 = False


def _powmod_python(base: int, exponent: int, modulus: int) -> int:
    return pow(base, exponent, modulus)


def _invert_python(value: int, modulus: int) -> int:
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:
        # Align with gmpy2.invert, which raises ZeroDivisionError.
        raise ZeroDivisionError(str(exc)) from exc


def _powmod_gmpy2(base: int, exponent: int, modulus: int) -> int:
    # pragma: no cover - exercised only where gmpy2 is installed
    return int(_gmpy2_powmod(base, exponent, modulus))


def _invert_gmpy2(value: int, modulus: int) -> int:
    # pragma: no cover - exercised only where gmpy2 is installed
    return int(_gmpy2_invert(value, modulus))


# The active implementations.  Module-level indirection (rather than an
# ``if`` inside the hot functions) keeps the per-call overhead at one
# attribute load; tests swap these to validate the dispatch seam.
_powmod_impl = _powmod_gmpy2 if HAVE_GMPY2 else _powmod_python
_invert_impl = _invert_gmpy2 if HAVE_GMPY2 else _invert_python


def powmod(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` (negative exponents invert)."""
    return _powmod_impl(base, exponent, modulus)


def invert(value: int, modulus: int) -> int:
    """Modular inverse; raises ZeroDivisionError when none exists."""
    return _invert_impl(value, modulus)
