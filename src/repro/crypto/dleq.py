"""Chaum--Pedersen discrete-log-equality (DLEQ) proofs.

Needed by the threshold applications layer (``repro.apps``): a node
producing a partial ElGamal decryption ``u^{s_i}`` or a partial DPRF
evaluation ``x^{s_i}`` must prove that the exponent equals the one in
its public verification value ``g^{s_i}`` — i.e. that
``log_g(g^{s_i}) == log_u(u^{s_i})`` — without revealing ``s_i``.

The proof is the standard Fiat--Shamir transform of the Chaum--Pedersen
sigma protocol: commit ``(g^k, u^k)``, derive challenge ``c`` by
hashing, respond ``z = k + c*s``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto.backend import AbstractGroup


def _challenge(
    group: AbstractGroup,
    g1, h1, g2, h2,
    commit1, commit2,
) -> int:
    h = hashlib.sha256()
    h.update(b"dleq|")
    for element in (g1, h1, g2, h2, commit1, commit2):
        h.update(group.element_to_bytes(element))
    return int.from_bytes(h.digest(), "big") % group.q


@dataclass(frozen=True)
class DleqProof:
    """Proof that log_{g1}(h1) == log_{g2}(h2)."""

    challenge: int
    response: int

    def byte_size(self, group: AbstractGroup) -> int:
        return 2 * group.scalar_bytes


def prove(
    group: AbstractGroup,
    secret: int,
    g1,
    g2,
    rng: random.Random,
) -> tuple:
    """Produce (h1, h2, proof) with h1 = g1^secret, h2 = g2^secret."""
    h1 = group.power(g1, secret)
    h2 = group.power(g2, secret)
    k = group.random_nonzero_scalar(rng)
    commit1 = group.power(g1, k)
    commit2 = group.power(g2, k)
    c = _challenge(group, g1, h1, g2, h2, commit1, commit2)
    z = group.scalar_add(k, group.scalar_mul(c, secret))
    return h1, h2, DleqProof(c, z)


def verify(
    group: AbstractGroup,
    g1,
    h1,
    g2,
    h2,
    proof: DleqProof,
) -> bool:
    """Check a DLEQ proof: recompute commitments and the challenge."""
    if not all(group.is_element(e) for e in (g1, h1, g2, h2)):
        return False
    # commit1 = g1^z * h1^{-c};  commit2 = g2^z * h2^{-c}.  Each is a
    # two-term multiexp sharing one squaring chain; h^{-c} = h^{q-c}
    # because membership in the order-q subgroup was just checked.
    neg_c = (-proof.challenge) % group.q
    commit1 = group.multiexp(((g1, proof.response), (h1, neg_c)))
    commit2 = group.multiexp(((g2, proof.response), (h2, neg_c)))
    return _challenge(group, g1, h1, g2, h2, commit1, commit2) == proof.challenge
