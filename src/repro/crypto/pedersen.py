"""Pedersen commitments — the unconditionally hiding alternative (§1).

The paper chooses Feldman's commitment (computational secrecy,
unconditional integrity) over Pedersen's (unconditional secrecy,
computational integrity), arguing that in computational PKC the
adversary sees the public key anyway.  We implement Pedersen
commitments so the E9 ablation can quantify the cost difference
(twice the exponentiations, plus a second polynomial), and because the
Joint-Feldman baseline with Pedersen hardening (Gennaro et al.) uses
them.

A Pedersen commitment to a polynomial ``a`` uses an auxiliary random
polynomial ``b`` of the same degree and publishes
``E_l = g^{a_l} h^{b_l}`` where ``h`` is a second generator with
unknown discrete log relative to ``g``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.groups import SchnorrGroup
from repro.crypto.multiexp import fixed_base_table, multiexp
from repro.crypto.polynomials import Polynomial


@lru_cache(maxsize=128)
def derive_second_generator(group: SchnorrGroup, label: bytes = b"pedersen-h") -> int:
    """Derive a second generator h with unknown dlog w.r.t. g.

    Hashes the label into the group by exponentiating g by a hash-derived
    scalar... which would reveal the dlog — so instead we hash-to-element:
    repeatedly hash a counter into Z_p and raise to the cofactor, which
    lands in the order-q subgroup with no known dlog relation to g.

    The derivation (a hash loop plus a cofactor exponentiation) is
    deterministic per ``(group, label)``, so it is cached process-wide:
    before, every ``PedersenCommitment.commit()`` that omitted ``h``
    re-derived it from scratch.
    """
    cofactor = (group.p - 1) // group.q
    counter = 0
    while True:
        digest = hashlib.sha256(
            label + b"|" + str(group.p).encode() + b"|" + str(counter).encode()
        ).digest()
        candidate = int.from_bytes(digest, "big") % group.p
        h = pow(candidate, cofactor, group.p)
        if h != 1 and h != group.g:
            return h
        counter += 1


@dataclass(frozen=True)
class PedersenCommitment:
    """Commitment vector E with E[l] = g^{a_l} h^{b_l}."""

    entries: tuple[int, ...]
    group: SchnorrGroup
    h: int

    @property
    def degree(self) -> int:
        return len(self.entries) - 1

    @classmethod
    def commit(
        cls,
        value_poly: Polynomial,
        blind_poly: Polynomial,
        group: SchnorrGroup,
        h: int | None = None,
    ) -> "PedersenCommitment":
        if value_poly.degree != blind_poly.degree:
            raise ValueError("value and blinding polynomials must match in degree")
        h = h if h is not None else derive_second_generator(group)
        h_table = fixed_base_table(group.p, group.q, h)
        entries = tuple(
            group.mul(group.commit(a), h_table.pow(b))
            for a, b in zip(value_poly.coeffs, blind_poly.coeffs)
        )
        return cls(entries, group, h)

    def verify_share(self, i: int, share: int, blind: int) -> bool:
        """True iff g^share h^blind == prod_l E_l^{i^l}."""
        g = self.group
        i_pows = []
        ip = 1
        for _ in self.entries:
            i_pows.append(ip)
            ip = ip * i % g.q
        expected = multiexp(zip(self.entries, i_pows), g.p, g.q)
        actual = g.mul(
            g.commit(share), fixed_base_table(g.p, g.q, self.h).pow(blind)
        )
        return actual == expected

    def combine(self, other: "PedersenCommitment") -> "PedersenCommitment":
        if (
            self.degree != other.degree
            or self.group != other.group
            or self.h != other.h
        ):
            raise ValueError("incompatible commitments")
        g = self.group
        return PedersenCommitment(
            tuple(g.mul(a, b) for a, b in zip(self.entries, other.entries)),
            g,
            self.h,
        )

    def byte_size(self) -> int:
        return len(self.entries) * self.group.element_bytes


@dataclass(frozen=True)
class PedersenShare:
    """A Pedersen-VSS share: the value share and its blinding share."""

    index: int
    value: int
    blind: int


def deal_pedersen(
    secret: int,
    degree: int,
    indices: list[int],
    group: SchnorrGroup,
    rng: random.Random,
    h: int | None = None,
) -> tuple[PedersenCommitment, list[PedersenShare]]:
    """One-shot Pedersen VSS dealing: commitment plus one share per index."""
    value_poly = Polynomial.random(degree, group.q, rng, constant_term=secret)
    blind_poly = Polynomial.random(degree, group.q, rng)
    commitment = PedersenCommitment.commit(value_poly, blind_poly, group, h)
    shares = [
        PedersenShare(i, value_poly(i), blind_poly(i)) for i in indices
    ]
    return commitment, shares
