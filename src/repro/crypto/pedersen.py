"""Pedersen commitments — the unconditionally hiding alternative (§1).

The paper chooses Feldman's commitment (computational secrecy,
unconditional integrity) over Pedersen's (unconditional secrecy,
computational integrity), arguing that in computational PKC the
adversary sees the public key anyway.  We implement Pedersen
commitments so the E9 ablation can quantify the cost difference
(twice the exponentiations, plus a second polynomial), and because the
Joint-Feldman baseline with Pedersen hardening (Gennaro et al.) uses
them.

A Pedersen commitment to a polynomial ``a`` uses an auxiliary random
polynomial ``b`` of the same degree and publishes
``E_l = g^{a_l} h^{b_l}`` where ``h`` is a second generator with
unknown discrete log relative to ``g``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.backend import AbstractGroup
from repro.crypto.polynomials import Polynomial


@lru_cache(maxsize=128)
def derive_second_generator(group: AbstractGroup, label: bytes = b"pedersen-h"):
    """Derive a second generator h with unknown dlog w.r.t. g.

    Exponentiating g by a hash-derived scalar would reveal the dlog, so
    each backend hashes *into the group* instead (cofactor
    exponentiation for modp, try-and-increment for the curve) — no dlog
    relation to g is ever computed.  Deterministic per ``(group,
    label)`` and cached process-wide on top of the backend's own cache.
    """
    return group.second_generator(label)


@dataclass(frozen=True)
class PedersenCommitment:
    """Commitment vector E with E[l] = g^{a_l} h^{b_l}."""

    entries: tuple
    group: AbstractGroup
    h: object

    @property
    def degree(self) -> int:
        return len(self.entries) - 1

    @classmethod
    def commit(
        cls,
        value_poly: Polynomial,
        blind_poly: Polynomial,
        group: AbstractGroup,
        h=None,
    ) -> "PedersenCommitment":
        if value_poly.degree != blind_poly.degree:
            raise ValueError("value and blinding polynomials must match in degree")
        h = h if h is not None else derive_second_generator(group)
        h_table = group.fixed_base(h)
        entries = tuple(
            group.mul(group.commit(a), h_table.pow(b))
            for a, b in zip(value_poly.coeffs, blind_poly.coeffs)
        )
        return cls(entries, group, h)

    def verify_share(self, i: int, share: int, blind: int) -> bool:
        """True iff g^share h^blind == prod_l E_l^{i^l}."""
        g = self.group
        i_pows = []
        ip = 1
        for _ in self.entries:
            i_pows.append(ip)
            ip = ip * i % g.q
        expected = g.multiexp(zip(self.entries, i_pows))
        actual = g.mul(g.commit(share), g.fixed_base(self.h).pow(blind))
        return actual == expected

    def combine(self, other: "PedersenCommitment") -> "PedersenCommitment":
        if (
            self.degree != other.degree
            or self.group != other.group
            or self.h != other.h
        ):
            raise ValueError("incompatible commitments")
        g = self.group
        return PedersenCommitment(
            tuple(g.mul(a, b) for a, b in zip(self.entries, other.entries)),
            g,
            self.h,
        )

    def byte_size(self) -> int:
        return len(self.entries) * self.group.element_bytes


@dataclass(frozen=True)
class PedersenShare:
    """A Pedersen-VSS share: the value share and its blinding share."""

    index: int
    value: int
    blind: int


def deal_pedersen(
    secret: int,
    degree: int,
    indices: list[int],
    group: AbstractGroup,
    rng: random.Random,
    h=None,
) -> tuple[PedersenCommitment, list[PedersenShare]]:
    """One-shot Pedersen VSS dealing: commitment plus one share per index."""
    value_poly = Polynomial.random(degree, group.q, rng, constant_term=secret)
    blind_poly = Polynomial.random(degree, group.q, rng)
    commitment = PedersenCommitment.commit(value_poly, blind_poly, group, h)
    shares = [
        PedersenShare(i, value_poly(i), blind_poly(i)) for i in indices
    ]
    return commitment, shares
