"""Schnorr groups: the modp backend of the paper's discrete-log setting
(§2.3).

A :class:`SchnorrGroup` wraps parameters ``(p, q, g)`` — a prime-order-q
multiplicative subgroup of ``Z_p^*`` — and provides the group and scalar
arithmetic the protocols need: exponentiation, scalar field operations
mod q, random scalars, and (de)serialization with stable byte sizes so
the metrics layer can meter communication complexity.  It implements the
backend interface of :class:`repro.crypto.backend.AbstractGroup`; the
elliptic-curve sibling is :class:`repro.crypto.ec.EcGroup`, reachable
from the same :func:`group_by_name` registry under ``"secp256k1"``.

Three kinds of parameter sets are exposed:

* :func:`toy_group`, :func:`small_group`, :func:`medium_group` —
  deterministically generated small parameters used by tests and
  benchmarks, where protocol logic rather than bignum arithmetic should
  dominate the runtime;
* :data:`RFC5114_1024_160` and :func:`large_group` — standardized /
  generated MODP groups with prime-order subgroups, for realistic-size
  runs;
* ``group_by_name("secp256k1")`` — the elliptic-curve backend at
  matched ~128-bit security against 2048-bit modp groups.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.crypto.intops import invert, powmod
from repro.crypto import metering, parallel
from repro.crypto.multiexp import SharedBases, fixed_base_table, multiexp
from repro.crypto.primes import SchnorrParams, generate_schnorr_params


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order multiplicative subgroup of Z_p^*.

    Group elements are plain ints in ``[1, p)``; scalars are ints in
    ``[0, q)``.  All methods are pure.
    """

    p: int
    q: int
    g: int
    name: str = field(default="custom", compare=False)

    # -- scalar field (Z_q) ------------------------------------------------

    def scalar(self, x: int) -> int:
        """Reduce an integer into the scalar field Z_q."""
        return x % self.q

    def scalar_add(self, a: int, b: int) -> int:
        return (a + b) % self.q

    def scalar_sub(self, a: int, b: int) -> int:
        return (a - b) % self.q

    def scalar_mul(self, a: int, b: int) -> int:
        return (a * b) % self.q

    def scalar_neg(self, a: int) -> int:
        return (-a) % self.q

    def scalar_inv(self, a: int) -> int:
        """Multiplicative inverse in Z_q; raises ZeroDivisionError on 0."""
        if a % self.q == 0:
            raise ZeroDivisionError("0 has no inverse in Z_q")
        return invert(a, self.q)

    def random_scalar(self, rng: random.Random) -> int:
        """Uniform scalar in [0, q)."""
        return rng.randrange(self.q)

    def random_nonzero_scalar(self, rng: random.Random) -> int:
        """Uniform scalar in [1, q)."""
        return rng.randrange(1, self.q)

    # -- group (G subset of Z_p^*) -----------------------------------------

    @property
    def identity(self) -> int:
        return 1

    def power(self, base: int, exponent: int) -> int:
        """base ** exponent mod p (exponent reduced mod q)."""
        metering.MODP.power += 1
        return powmod(base, exponent % self.q, self.p)

    def commit(self, exponent: int) -> int:
        """g ** exponent mod p — the Feldman commitment of one scalar.

        Routed through the process-wide fixed-base window table for
        ``g`` (built once per parameter set), which replaces the
        squaring chain of ``pow`` with ~|q|/5 multiplications.
        """
        metering.MODP.commit += 1
        return fixed_base_table(self.p, self.q, self.g).pow(exponent)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return invert(a, self.p)

    def is_element(self, a: int) -> bool:
        """Membership test: a in [1, p) and a^q == 1 (prime-order subgroup)."""
        return (
            isinstance(a, int) and 0 < a < self.p
            and powmod(a, self.q, self.p) == 1
        )

    # -- multiexp engines (the backend-generic entry points) -----------------

    def multiexp(self, pairs) -> int:
        """``prod_i base_i^{exp_i}`` via the shared-squaring-chain engine;
        very large claim sets fan out across the ambient process pool."""
        metering.MODP.multiexp += 1
        executor = parallel.active_executor()
        if executor is not None and executor.parallel:
            pairs = list(pairs)
            if executor.wants_terms(len(pairs)):
                result = executor.multiexp(self, pairs)
                if result is not None:
                    return result
        return multiexp(pairs, self.p, self.q)

    def fixed_base(self, base: int):
        return fixed_base_table(self.p, self.q, base)

    def shared_bases(self, bases) -> SharedBases:
        return SharedBases(tuple(bases), self.p, self.q)

    def batch_verifier(self, entries, base: int | None = None):
        from repro.crypto.backend import BatchedClaimVerifier

        return BatchedClaimVerifier(self, entries, base)

    # -- sizes (for communication metering) ---------------------------------

    @property
    def element_bytes(self) -> int:
        """Serialized size of one group element."""
        return (self.p.bit_length() + 7) // 8

    @property
    def scalar_bytes(self) -> int:
        """Serialized size of one scalar."""
        return (self.q.bit_length() + 7) // 8

    @property
    def security_bits(self) -> int:
        """kappa: the bit length of the subgroup order q."""
        return self.q.bit_length()

    # -- serialization -------------------------------------------------------

    def element_to_bytes(self, a: int) -> bytes:
        return a.to_bytes(self.element_bytes, "big")

    def element_from_bytes(self, raw: bytes) -> int:
        a = int.from_bytes(raw, "big")
        if not self.is_element(a):
            raise ValueError("bytes do not encode a group element")
        return a

    def element_decode(self, raw: bytes) -> int:
        """Wire-grade structural decode: cheap range parse, no subgroup
        check (verification rejects non-elements downstream, exactly as
        the pre-backend codec behaved)."""
        return int.from_bytes(raw, "big")

    def scalar_to_bytes(self, x: int) -> bytes:
        return (x % self.q).to_bytes(self.scalar_bytes, "big")

    def scalar_from_bytes(self, raw: bytes) -> int:
        return int.from_bytes(raw, "big") % self.q

    # -- hashing into the group ----------------------------------------------

    def hash_to_scalar(self, *parts: bytes) -> int:
        # Lazy import: repro.crypto.hashing imports feldman, which
        # imports this module.
        from repro.crypto.hashing import hash_to_scalar

        return hash_to_scalar(self.q, *parts)

    def hash_to_element(self, *parts: bytes) -> int:
        """Hash into the order-q subgroup (cofactor exponentiation,
        delegating to :func:`repro.crypto.hashing.hash_to_element`)."""
        from repro.crypto.hashing import hash_to_element

        return hash_to_element(self.p, self.q, *parts)

    def second_generator(self, label: bytes = b"pedersen-h") -> int:
        """A generator ``h`` with unknown discrete log w.r.t. ``g``
        (hash-to-element, so no dlog relation is ever computed)."""
        return _modp_second_generator(self.p, self.q, self.g, label)

    def validate(self) -> None:
        SchnorrParams(self.p, self.q, self.g).validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SchnorrGroup({self.name}, |q|={self.q.bit_length()} bits)"


@lru_cache(maxsize=128)
def _modp_second_generator(p: int, q: int, g: int, label: bytes) -> int:
    """Hash-to-element derivation of the Pedersen ``h`` (moved here from
    :mod:`repro.crypto.pedersen`; the derivation bytes are unchanged, so
    cached test vectors and seeded runs see the same ``h``)."""
    cofactor = (p - 1) // q
    counter = 0
    while True:
        digest = hashlib.sha256(
            label + b"|" + str(p).encode() + b"|" + str(counter).encode()
        ).digest()
        candidate = int.from_bytes(digest, "big") % p
        h = powmod(candidate, cofactor, p)
        if h != 1 and h != g:
            return h
        counter += 1


@lru_cache(maxsize=None)
def toy_group(seed: int = 0) -> SchnorrGroup:
    """64-bit-q group: fast enough for whole-protocol property tests."""
    params = generate_schnorr_params(q_bits=64, p_bits=128, seed=seed)
    return SchnorrGroup(params.p, params.q, params.g, name=f"toy-{seed}")


@lru_cache(maxsize=None)
def small_group(seed: int = 0) -> SchnorrGroup:
    """160-bit-q group: matches the classic DSA parameter shape."""
    params = generate_schnorr_params(q_bits=160, p_bits=512, seed=seed)
    return SchnorrGroup(params.p, params.q, params.g, name=f"small-{seed}")


@lru_cache(maxsize=None)
def medium_group(seed: int = 0) -> SchnorrGroup:
    """256-bit-q group in a 1024-bit field: realistic modern shape."""
    params = generate_schnorr_params(q_bits=256, p_bits=1024, seed=seed)
    return SchnorrGroup(params.p, params.q, params.g, name=f"medium-{seed}")


# RFC 5114 section 2.1: 1024-bit MODP group with 160-bit prime-order subgroup.
RFC5114_1024_160 = SchnorrGroup(
    p=int(
        "B10B8F96A080E01DDE92DE5EAE5D54EC52C99FBCFB06A3C69A6A9DCA52D23B61"
        "6073E28675A23D189838EF1E2EE652C013ECB4AEA906112324975C3CD49B83BF"
        "ACCBDD7D90C4BD7098488E9C219A73724EFFD6FAE5644738FAA31A4FF55BCCC0"
        "A151AF5F0DC8B4BD45BF37DF365C1A65E68CFDA76D4DA708DF1FB2BC2E4A4371",
        16,
    ),
    q=int("F518AA8781A8DF278ABA4E7D64B7CB9D49462353", 16),
    g=int(
        "A4D1CBD5C3FD34126765A442EFB99905F8104DD258AC507FD6406CFF14266D31"
        "266FEA1E5C41564B777E690F5504F213160217B4B01B886A5E91547F9E2749F4"
        "D7FBD7D3B9A92EE1909D0D2263F80A76A6A24C087A091F531DBF0A0169B6A28A"
        "D662A4D18E73AFA32D779D5918D08BC8858F4DCEF97C2A24855E6EEB22B3B2E5",
        16,
    ),
    name="rfc5114-1024-160",
)

# RFC 5114 section 2.3: 2048-bit MODP group with 256-bit prime-order
# subgroup — the standardized reference shape for the paper's
# realistic-size runs (the deterministic ``large_group(0)`` generates
# the same |p|/|q| shape when an independent parameter set is wanted).
RFC5114_2048_256 = SchnorrGroup(
    p=int(
        "87A8E61DB4B6663CFFBBD19C651959998CEEF608660DD0F25D2CEED4435E3B00"
        "E00DF8F1D61957D4FAF7DF4561B2AA3016C3D91134096FAA3BF4296D830E9A7C"
        "209E0C6497517ABD5A8A9D306BCF67ED91F9E6725B4758C022E0B1EF4275BF7B"
        "6C5BFC11D45F9088B941F54EB1E59BB8BC39A0BF12307F5C4FDB70C581B23F76"
        "B63ACAE1CAA6B7902D52526735488A0EF13C6D9A51BFA4AB3AD8347796524D8E"
        "F6A167B5A41825D967E144E5140564251CCACB83E6B486F6B3CA3F7971506026"
        "C0B857F689962856DED4010ABD0BE621C3A3960A54E710C375F26375D7014103"
        "A4B54330C198AF126116D2276E11715F693877FAD7EF09CADB094AE91E1A1597",
        16,
    ),
    q=int(
        "8CF83642A709A097B447997640129DA299B1A47D1EB3750BA308B0FE64F5FBD3",
        16,
    ),
    g=int(
        "3FB32C9B73134D0B2E77506660EDBD484CA7B18F21EF205407F4793A1A0BA125"
        "10DBC15077BE463FFF4FED4AAC0BB555BE3A6C1B0C6B47B1BC3773BF7E8C6F62"
        "901228F8C28CBB18A55AE31341000A650196F931C77A57F2DDF463E5E9EC144B"
        "777DE62AAAB8A8628AC376D282D6ED3864E67982428EBC831D14348F6F2F9193"
        "B5045AF2767164E1DFC967C1FB3F2E55A4BD1BFFE83B9C80D052B985D182EA0A"
        "DB2A3B7313D3FE14C8484B1E052588B9B7D2BBD2DF016199ECD06E1557CD0915"
        "B3353BBB64E0EC377FD028370DF92B52C7891428CDC67EB6184B523D1DB246C3"
        "2F63078490F00EF8D647D148D47954515E2327CFEF98C582664B4C0F6CC41659",
        16,
    ),
    name="rfc5114-2048-256",
)


@lru_cache(maxsize=None)
def large_group(seed: int = 0) -> SchnorrGroup:
    """256-bit-q group in a 2048-bit field (slow to generate; lazy+cached)."""
    params = generate_schnorr_params(q_bits=256, p_bits=2048, seed=seed)
    return SchnorrGroup(params.p, params.q, params.g, name=f"large-{seed}")


GROUP_REGISTRY = {
    "toy": toy_group,
    "small": small_group,
    "medium": medium_group,
    "large": large_group,
}

BACKENDS = ("modp", "secp256k1")


def group_by_name(name: str, seed: int = 0):
    """Look up a named parameter set.

    modp sets: toy/small/medium/large (seeded) and rfc5114-1024-160;
    ``"secp256k1"`` resolves to the elliptic-curve backend
    (:class:`repro.crypto.ec.EcGroup`) at matched ~128-bit security
    against 2048-bit modp groups.
    """
    if name in GROUP_REGISTRY:
        return GROUP_REGISTRY[name](seed)
    if name == "rfc5114-1024-160":
        return RFC5114_1024_160
    if name == "rfc5114-2048-256":
        return RFC5114_2048_256
    if name == "secp256k1":
        from repro.crypto.ec import secp256k1_group

        return secp256k1_group()
    raise KeyError(f"unknown group {name!r}")
