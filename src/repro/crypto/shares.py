"""Share containers and secret reconstruction helpers.

A :class:`Share` is what a node holds after a VSS/DKG completes: its
index, the share value ``s_i = f(i, 0)`` (or the summed/interpolated
value for DKG/renewal), and the commitment that makes it publicly
verifiable.  :func:`reconstruct_secret` is the client-side core of the
Rec protocol: filter shares against the commitment, then Lagrange-
interpolate at 0.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import interpolate_at


@dataclass(frozen=True)
class Share:
    """A verifiable secret share held by node ``index``."""

    index: int
    value: int
    commitment: FeldmanCommitment | FeldmanVector

    def verify(self) -> bool:
        """Check this share against its own commitment."""
        return self.commitment.verify_share(self.index, self.value)

    @property
    def public_key(self) -> int:
        """g^s for the secret this share belongs to."""
        return self.commitment.public_key()


class ReconstructionError(Exception):
    """Raised when too few valid shares are available to reconstruct."""


def reconstruct_secret(
    shares: Iterable[Share],
    threshold: int,
    q: int,
) -> int:
    """Reconstruct the secret from at least ``threshold + 1`` valid shares.

    Shares failing their commitment check are discarded (Byzantine nodes
    may submit garbage during Rec); duplicates by index are collapsed.
    Raises :class:`ReconstructionError` if fewer than ``threshold + 1``
    distinct valid shares remain.
    """
    seen: dict[int, int] = {}
    for share in shares:
        if share.index in seen:
            continue
        if share.verify():
            seen[share.index] = share.value
    if len(seen) < threshold + 1:
        raise ReconstructionError(
            f"need {threshold + 1} valid shares, have {len(seen)}"
        )
    points = list(seen.items())[: threshold + 1]
    return interpolate_at(points, 0, q)


def reconstruct_raw(
    points: Iterable[tuple[int, int]],
    q: int,
) -> int:
    """Interpolate (index, value) pairs at 0 without verification.

    For internal use where shares were already verified (e.g. inside a
    node that validated ready messages via verify-point).
    """
    return interpolate_at(list(points), 0, q)
