"""Share containers and secret reconstruction helpers.

A :class:`Share` is what a node holds after a VSS/DKG completes: its
index, the share value ``s_i = f(i, 0)`` (or the summed/interpolated
value for DKG/renewal), and the commitment that makes it publicly
verifiable.  :func:`reconstruct_secret` is the client-side core of the
Rec protocol: filter shares against the commitment, then Lagrange-
interpolate at 0.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

from repro.crypto.feldman import (
    FeldmanCommitment,
    FeldmanVector,
    share_verifier,
)
from repro.crypto.polynomials import interpolate_at


@dataclass(frozen=True)
class Share:
    """A verifiable secret share held by node ``index``."""

    index: int
    value: int
    commitment: FeldmanCommitment | FeldmanVector

    def verify(self) -> bool:
        """Check this share against its own commitment."""
        return self.commitment.verify_share(self.index, self.value)

    @property
    def public_key(self) -> int:
        """g^s for the secret this share belongs to."""
        return self.commitment.public_key()


class ReconstructionError(Exception):
    """Raised when too few valid shares are available to reconstruct."""


def reconstruct_secret(
    shares: Iterable[Share],
    threshold: int,
    q: int,
    rng: random.Random | None = None,
) -> int:
    """Reconstruct the secret from at least ``threshold + 1`` valid shares.

    Shares failing their commitment check are discarded (Byzantine nodes
    may submit garbage during Rec); the first *valid* share per index
    wins, so a garbage duplicate cannot shadow a later honest one.
    Claims under one commitment are filtered in randomized-linear-
    combination batch checks (per-share fallback identifies the bad
    ones); only indices whose current candidate failed retry with their
    next candidate, so the honest path is a single batch.  ``rng`` salts
    the batch weights for deterministic runs.  Raises
    :class:`ReconstructionError` if fewer than ``threshold + 1``
    distinct valid shares remain.
    """
    candidates: dict[int, list[Share]] = {}
    order: list[int] = []  # first-seen index order
    for share in shares:
        if share.index not in candidates:
            candidates[share.index] = []
            order.append(share.index)
        candidates[share.index].append(share)
    seen: dict[int, int] = {}
    cursor = {i: 0 for i in order}
    while True:
        round_items: dict[
            FeldmanCommitment | FeldmanVector, list[tuple[int, int]]
        ] = {}
        for i in order:
            if i in seen or cursor[i] >= len(candidates[i]):
                continue
            share = candidates[i][cursor[i]]
            cursor[i] += 1
            round_items.setdefault(share.commitment, []).append(
                (share.index, share.value)
            )
        if not round_items:
            break
        for commitment, items in round_items.items():
            good, _bad = share_verifier(commitment).batch_verify(
                items, rng=rng
            )
            seen.update(good)
    if len(seen) < threshold + 1:
        raise ReconstructionError(
            f"need {threshold + 1} valid shares, have {len(seen)}"
        )
    points = [(i, seen[i]) for i in order if i in seen][: threshold + 1]
    return interpolate_at(points, 0, q)


class PointCollector:
    """Buffer ``(sender, point)`` claims for the Rec protocol and batch-
    verify them when the interpolation threshold is reachable.

    Shared by :class:`repro.vss.session.VssSession` and
    :class:`repro.dkg.node.DkgNode`: both collect ``t + 1`` share
    points verified against a :class:`FeldmanVector` before
    interpolating at 0.
    """

    def __init__(self, verifier: FeldmanVector, needed: int):
        self.verifier = verifier
        self.needed = needed
        self.points: dict[int, int] = {}
        self._pending: dict[int, int] = {}
        self._rejected: set[int] = set()

    def seen(self, sender: int) -> bool:
        return (
            sender in self.points
            or sender in self._pending
            or sender in self._rejected
        )

    def add(
        self, sender: int, point: int, rng: random.Random | None = None
    ) -> bool:
        """Buffer one claim; returns True once ``needed`` points are
        verified.  Verification runs in one batch per threshold
        crossing; bad points are dropped and their senders rejected
        for good (one point per sender, as in the seed's first-time
        dispatch)."""
        self._pending[sender] = point
        if len(self.points) + len(self._pending) < self.needed:
            return False
        items = list(self._pending.items())
        self._pending.clear()
        good, bad = self.verifier.batch_verify(items, rng=rng)
        self.points.update(good)
        self._rejected.update(bad)
        return len(self.points) >= self.needed

    def first_points(self) -> list[tuple[int, int]]:
        """The first ``needed`` verified points, for interpolation."""
        return list(self.points.items())[: self.needed]


def reconstruct_raw(
    points: Iterable[tuple[int, int]],
    q: int,
) -> int:
    """Interpolate (index, value) pairs at 0 without verification.

    For internal use where shares were already verified (e.g. inside a
    node that validated ready messages via verify-point).
    """
    return interpolate_at(list(points), 0, q)
