"""Simultaneous multi-exponentiation: the crypto hot-path engine.

Every Fig. 1 predicate (verify-poly, verify-point, verify-share) and
every proof check in this package reduces to products of powers
``prod_i b_i^{e_i} mod p``.  Evaluated naively that is one ``pow`` per
term — each paying its own ~|q| squarings.  This module shares that
work three ways:

* :func:`multiexp` — Straus' interleaved-window algorithm (all terms
  share one squaring chain) for small products, switching to
  Pippenger's bucket method above :data:`PIPPENGER_CUTOFF` terms,
  where grouping terms by window digit amortizes the multiplications
  too;
* :class:`FixedBaseTable` — windowed precomputation for a base that is
  exponentiated over and over (the group generator ``g``, the Pedersen
  ``h``, long-lived public keys): after a one-time table build, an
  exponentiation costs ~|q|/w multiplications and *zero* squarings;
* :class:`SharedBases` — Straus tables for a fixed base *vector*
  exponentiated with many different scalar vectors (one collapsed
  commitment row checked against many senders);
The randomized-linear-combination batch verifier that used to live
here is now the backend-generic
:class:`repro.crypto.backend.BatchedClaimVerifier`, reached through
``group.batch_verifier(entries)``; over a
:class:`~repro.crypto.groups.SchnorrGroup` it produces bit-identical
Fiat--Shamir weights and verdicts.

Everything here is plain-int arithmetic — no dependency on the group
or protocol layers — so :mod:`repro.crypto.groups` can build on it.
Since the backend refactor this module is the *modp engine*: protocol
code reaches it through ``group.multiexp`` / ``group.fixed_base`` /
``group.shared_bases`` / ``group.batch_verifier`` on
:class:`~repro.crypto.groups.SchnorrGroup` (the secp256k1 mirror lives
in :mod:`repro.crypto.ec`, the backend-generic batch verifier in
:mod:`repro.crypto.backend`), but the int-typed entry points below stay
public and byte-for-byte compatible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from functools import lru_cache

from repro.crypto.intops import powmod

# Below this many terms Straus wins (its precomputation is linear in
# the term count); above it Pippenger's digit buckets amortize better.
# With |q| ~ 160-256 bits the crossover sits in the hundreds of terms.
PIPPENGER_CUTOFF = 300


def _straus_window(bits: int, count: int) -> int:
    """Window width minimizing count*(2^w - 2) + count*ceil(bits/w)."""
    best_w, best_cost = 1, None
    for w in range(1, 9):
        cost = count * ((1 << w) - 2) + count * -(-bits // w)
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _pippenger_window(bits: int, count: int) -> int:
    """Window width minimizing ceil(bits/w) * (count + 2^(w+1))."""
    best_w, best_cost = 1, None
    for w in range(1, 17):
        cost = -(-bits // w) * (count + (2 << w))
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w


def _straus(bases: Sequence[int], exps: Sequence[int], p: int) -> int:
    """Interleaved windows: one shared squaring chain for all terms."""
    bits = max(e.bit_length() for e in exps)
    w = _straus_window(bits, len(bases))
    mask = (1 << w) - 1
    # tables[i][d] = bases[i]^d for d in 0..2^w-1
    tables = []
    for b in bases:
        row = [1, b % p]
        for _ in range(mask - 1):
            row.append(row[-1] * b % p)
        tables.append(row)
    acc = 1
    for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
        if acc != 1:
            for _ in range(w):
                acc = acc * acc % p
        for table, e in zip(tables, exps):
            d = (e >> shift) & mask
            if d:
                acc = acc * table[d] % p
    return acc


def _pippenger(bases: Sequence[int], exps: Sequence[int], p: int) -> int:
    """Bucket method: per window, group bases by digit, then fold the
    buckets with the running-product trick (sum_d d*B_d in two passes)."""
    bits = max(e.bit_length() for e in exps)
    w = _pippenger_window(bits, len(bases))
    mask = (1 << w) - 1
    acc = 1
    for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
        if acc != 1:
            for _ in range(w):
                acc = acc * acc % p
        buckets: dict[int, int] = {}
        for b, e in zip(bases, exps):
            d = (e >> shift) & mask
            if d:
                cur = buckets.get(d)
                buckets[d] = b if cur is None else cur * b % p
        # sum_d d * B_d via the running-product trick: walking digits
        # from the top, `running` accumulates B_mask..B_d and is folded
        # into the window product once per digit.
        running, window_acc = 1, 1
        for d in range(mask, 0, -1):
            bucket = buckets.get(d)
            if bucket is not None:
                running = running * bucket % p
            if running != 1:
                window_acc = window_acc * running % p
        acc = acc * window_acc % p
    return acc


def multiexp(
    pairs: Iterable[tuple[int, int]], p: int, q: int | None = None
) -> int:
    """``prod_i base_i^{exp_i} mod p``; exponents reduced mod ``q``.

    Dispatches by term count: 0/1 terms short-circuit to ``pow``, small
    products run Straus, large ones Pippenger.
    """
    bases: list[int] = []
    exps: list[int] = []
    for base, exp in pairs:
        if q is not None:
            exp %= q
        if exp < 0:
            raise ValueError("negative exponent (pass q to reduce)")
        if exp == 0 or base == 1:
            continue
        bases.append(base)
        exps.append(exp)
    if not bases:
        return 1
    if len(bases) == 1:
        return powmod(bases[0], exps[0], p)
    if len(bases) >= PIPPENGER_CUTOFF:
        return _pippenger(bases, exps, p)
    return _straus(bases, exps, p)


class FixedBaseTable:
    """Windowed fixed-base exponentiation: ``base^e mod p`` in
    ~``|q|/window`` multiplications and no squarings.

    ``table[k][d] = base^(d << (window*k))`` for every window position
    ``k`` and digit ``d``; an exponentiation is one table lookup and
    multiply per nonzero digit.  Build cost is one multiplication per
    table entry, repaid after a handful of uses.
    """

    __slots__ = ("p", "q", "base", "window", "_table")

    def __init__(self, p: int, q: int, base: int, window: int = 5):
        self.p = p
        self.q = q
        self.base = base % p
        self.window = window
        windows = -(-q.bit_length() // window)
        table = []
        unit = self.base
        for _ in range(windows):
            row = [1, unit]
            for _ in range((1 << window) - 2):
                row.append(row[-1] * unit % p)
            table.append(row)
            unit = row[-1] * unit % p  # base^(2^(w*(k+1)))
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod p`` (exponent reduced mod q)."""
        e = exponent % self.q
        acc = 1
        mask = (1 << self.window) - 1
        for row in self._table:
            if e == 0:
                break
            d = e & mask
            if d:
                acc = acc * row[d] % self.p
            e >>= self.window
        return acc


@lru_cache(maxsize=256)
def fixed_base_table(p: int, q: int, base: int, window: int = 5) -> FixedBaseTable:
    """Process-wide table cache keyed by the raw parameters, so every
    group object with the same ``(p, q)`` shares tables for ``g``,
    ``h`` and recurring public keys."""
    return FixedBaseTable(p, q, base, window)


class SharedBases:
    """Straus with the per-base digit tables built once and reused for
    many exponent vectors — a collapsed commitment row evaluated
    against every sender, or share commitments for every node index."""

    __slots__ = ("p", "q", "window", "_tables", "_mask", "count")

    def __init__(self, bases: Sequence[int], p: int, q: int, window: int = 4):
        self.p = p
        self.q = q
        self.window = window
        self._mask = (1 << window) - 1
        self.count = len(bases)
        tables = []
        for b in bases:
            b %= p
            row = [1, b]
            for _ in range(self._mask - 1):
                row.append(row[-1] * b % p)
            tables.append(row)
        self._tables = tables

    def multiexp(self, exps: Sequence[int]) -> int:
        """``prod_i bases[i]^{exps[i]} mod p`` using the shared tables."""
        if len(exps) != self.count:
            raise ValueError("exponent vector length mismatch")
        p, w, mask = self.p, self.window, self._mask
        exps = [e % self.q for e in exps]
        bits = max((e.bit_length() for e in exps), default=0)
        if bits == 0:
            return 1
        acc = 1
        for shift in range(((bits + w - 1) // w) * w - w, -1, -w):
            if acc != 1:
                for _ in range(w):
                    acc = acc * acc % p
            for table, e in zip(self._tables, exps):
                d = (e >> shift) & mask
                if d:
                    acc = acc * table[d] % p
        return acc

    def power_row(self, x: int) -> int:
        """``prod_i bases[i]^{x^i}``: evaluate the committed polynomial
        in the exponent at ``x`` (the verify-share right-hand side)."""
        q = self.q
        exps = []
        xp = 1
        for _ in range(self.count):
            exps.append(xp)
            xp = xp * x % q
        return self.multiexp(exps)
