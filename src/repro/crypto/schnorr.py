"""Schnorr signatures over the same discrete-log group (§2.3).

The paper requires "message authentication with any digital signature
scheme secure against adaptive chosen-message attack"; signed ``echo``,
``ready`` and ``lead-ch`` messages carry these signatures so the leader
can prove the validity of its proposal (sets R and M in Figs. 2–3).

We implement standard Fiat--Shamir Schnorr signatures: for key
``x`` with public key ``X = g^x``, a signature on message ``m`` is
``(c, z)`` with ``c = H(X || g^k || m)`` and ``z = k + c*x mod q``.
Verification recomputes ``R = g^z X^{-c}`` and checks
``c == H(X || R || m)``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.backend import AbstractGroup


def _challenge(group: AbstractGroup, public_key, nonce_point, message: bytes) -> int:
    digest = hashlib.sha256(
        b"schnorr-sig|"
        + group.element_to_bytes(public_key)
        + group.element_to_bytes(nonce_point)
        + message
    ).digest()
    return int.from_bytes(digest, "big") % group.q


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature (challenge, response)."""

    challenge: int
    response: int

    def byte_size(self, group: AbstractGroup) -> int:
        return 2 * group.scalar_bytes


@dataclass(frozen=True)
class SigningKey:
    """A Schnorr signing key; ``public_key`` is g^x."""

    secret: int
    group: AbstractGroup

    @property
    def public_key(self):
        return self.group.commit(self.secret)

    @classmethod
    def generate(cls, group: AbstractGroup, rng: random.Random) -> "SigningKey":
        return cls(group.random_nonzero_scalar(rng), group)

    def sign(self, message: bytes, rng: random.Random) -> Signature:
        """Sign with a random nonce drawn from ``rng``.

        Determinism of simulations is preserved by seeding ``rng`` from
        the simulation seed; we do not use RFC 6979 derandomization to
        keep the code close to the textbook scheme.
        """
        g = self.group
        k = g.random_nonzero_scalar(rng)
        nonce_point = g.commit(k)
        c = _challenge(g, self.public_key, nonce_point, message)
        z = g.scalar_add(k, g.scalar_mul(c, self.secret))
        return Signature(c, z)


@lru_cache(maxsize=512)
def _verifier_bases(group: AbstractGroup, public_key):
    """Straus tables for (g, X), cached per public key: a long-lived
    signer (every CA-certified protocol node) is verified thousands of
    times against the same key."""
    return group.shared_bases((group.g, public_key))


def verify(
    group: AbstractGroup, public_key, message: bytes, sig: Signature
) -> bool:
    """Verify a Schnorr signature against ``public_key``."""
    if not group.is_element(public_key):
        return False
    if not (0 <= sig.challenge < group.q and 0 <= sig.response < group.q):
        return False
    # R = g^z * X^{-c}, one interleaved two-term multiexp; X^{-c} =
    # X^{q-c} since X is in the order-q subgroup (checked above).
    r = _verifier_bases(group, public_key).multiexp(
        (sig.response, (-sig.challenge) % group.q)
    )
    return _challenge(group, public_key, r, message) == sig.challenge
