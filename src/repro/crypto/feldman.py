"""Feldman commitments and the HybridVSS verification predicates (§3).

The dealer commits to the symmetric bivariate polynomial ``f`` by
publishing the matrix ``C`` with ``C_jl = g^{f_jl}``.  Two predicates
from Fig. 1 are implemented verbatim:

* ``verify-poly(C, i, a)`` — the row polynomial ``a`` handed to node
  ``P_i`` is consistent with ``C``:
  ``g^{a_l} == prod_j (C_jl)^{i^j}`` for all ``l in [0, t]``.
* ``verify-point(C, i, m, alpha)`` — a point ``alpha`` relayed by node
  ``P_m`` equals ``f(m, i)``:
  ``g^alpha == prod_{j,l} (C_jl)^{m^j i^l}``.

Both predicates are O(t^2) exponentiations when evaluated from the raw
matrix, and they run on every echo/ready/send of every session — the
protocol's verification hot path.  This implementation therefore
collapses the matrix *once per node index* (the cached row verifier
``W_l(i) = prod_j (C_jl)^{i^j}``, shared between ``verify_poly``,
``verify_point``, ``share_commitment`` and ``column_vector`` because
the dealt matrices are symmetric) and evaluates everything downstream
of the collapse with :mod:`repro.crypto.multiexp` — so repeated
``verify_point(m, i, alpha)`` calls cost O(t) multiplications, and
many buffered points against one commitment batch into a single
randomized-linear-combination check via :meth:`FeldmanVector.batch_verify`.

A univariate variant (:class:`FeldmanVector`) commits to a degree-t
polynomial by its coefficient exponentiations; it is used by the Rec
protocol to validate shares, by share renewal (the ``V_l`` values of
§5.2), and by the synchronous baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.backend import AbstractGroup
from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.polynomials import Polynomial


@dataclass(frozen=True)
class FeldmanCommitment:
    """Commitment matrix C with C[j][l] = g^{f_jl} for a bivariate f."""

    matrix: tuple[tuple, ...]
    group: AbstractGroup
    # Per-instance memo for collapsed rows, share commitments and
    # symmetry; excluded from equality/hashing so two commitments to the
    # same matrix stay interchangeable as dict keys.
    _cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if any(len(row) != len(self.matrix) for row in self.matrix):
            raise ValueError("commitment matrix must be square")

    @property
    def degree(self) -> int:
        return len(self.matrix) - 1

    @classmethod
    def commit(
        cls, poly: BivariatePolynomial, group: AbstractGroup
    ) -> "FeldmanCommitment":
        """Compute C_jl = g^{f_jl} for every coefficient of ``poly``."""
        if poly.q != group.q:
            raise ValueError("polynomial field does not match group order")
        matrix = tuple(
            tuple(group.commit(c) for c in row) for row in poly.coeffs
        )
        return cls(matrix, group)

    # -- the per-node collapse cache -----------------------------------------

    def _is_symmetric(self) -> bool:
        sym = self._cache.get("sym")
        if sym is None:
            m = self.matrix
            n = len(m)
            sym = all(
                m[j][ell] == m[ell][j]
                for j in range(n)
                for ell in range(j + 1, n)
            )
            self._cache["sym"] = sym
        return sym

    def _collapse(self, index: int, axis: int) -> "FeldmanVector":
        """Fold the matrix with powers of ``index`` along ``axis``.

        ``axis=0`` gives the *row verifier* ``W_l = prod_j C_jl^{i^j}``
        (verify-poly right-hand sides; ``W_0`` is the share
        commitment); ``axis=1`` gives ``V_j = prod_l C_jl^{i^l}`` (the
        point verifier for receiver ``i``).  For the symmetric matrices
        HybridVSS deals the two coincide and share one cache slot, so a
        node pays for the O(t^2) collapse exactly once per commitment.
        """
        g = self.group
        i = index % g.q
        key = ("collapse", i, 0 if self._is_symmetric() else axis)
        cached = self._cache.get(key)
        if cached is None:
            n = len(self.matrix)
            i_pows = []
            ip = 1
            for _ in range(n):
                i_pows.append(ip)
                ip = ip * i % g.q
            entries = []
            for ell in range(n):
                if axis == 0:
                    pairs = [(self.matrix[j][ell], i_pows[j]) for j in range(n)]
                else:
                    pairs = [(self.matrix[ell][j], i_pows[j]) for j in range(n)]
                entries.append(g.multiexp(pairs))
            cached = FeldmanVector(tuple(entries), g)
            self._cache[key] = cached
        return cached

    def row_verifier(self, i: int) -> "FeldmanVector":
        """The matrix collapsed once for node ``i``: entries
        ``W_l = prod_j C_jl^{i^j}``, against which both the node's row
        polynomial and its share commitment check in O(t)."""
        return self._collapse(i, axis=0)

    # -- Fig. 1 predicates ----------------------------------------------------

    def verify_poly(self, i: int, a: Polynomial) -> bool:
        """Fig. 1 predicate verify-poly(C, i, a).

        True iff ``a`` is the correct row polynomial f(i, .) under C:
        each coefficient commitment ``g^{a_l}`` (fixed-base table) must
        equal the cached collapsed entry ``W_l(i)``.
        """
        t = self.degree
        if a.degree != t or a.q != self.group.q:
            return False
        g = self.group
        table = g.fixed_base(g.g)
        return all(
            table.pow(c) == w
            for c, w in zip(a.coeffs, self.row_verifier(i).entries)
        )

    def verify_point(self, i: int, m: int, alpha: int) -> bool:
        """Fig. 1 predicate verify-point(C, i, m, alpha).

        True iff alpha = f(m, i) under the committed f.  The receiver-
        side collapse is cached, so repeated calls for one ``i`` cost
        O(t) multiplications each.
        """
        return self._collapse(i, axis=1).verify_share(m, alpha)

    def verify_share(self, i: int, share: int) -> bool:
        """True iff ``share`` = f(i, 0): the final VSS share of node i.

        Used by Rec to filter bad shares before interpolation.
        """
        return self.column_vector(0).verify_share(i, share)

    def public_key(self) -> int:
        """g^{f_00} = g^s: the public counterpart of the shared secret."""
        return self.matrix[0][0]

    def share_commitment(self, i: int) -> int:
        """g^{f(i,0)}: the public verification value for node i's share.

        Evaluated through the column-0 vector's shared Straus tables
        (one table build serves every node index) and memoized per
        index — the threshold-signature partial-verification hot path.
        """
        key = ("sharec", i % self.group.q)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = self.column_vector(
                0
            ).evaluate_in_exponent(i)
        return cached

    def combine(self, other: "FeldmanCommitment") -> "FeldmanCommitment":
        """Entry-wise product: commitment to the sum of the two committed
        polynomials (DKG Fig. 2: ``C_pq <- prod_d (C_d)_pq``)."""
        if self.degree != other.degree or self.group != other.group:
            raise ValueError("incompatible commitments")
        g = self.group
        matrix = tuple(
            tuple(g.mul(a, b) for a, b in zip(ra, rb))
            for ra, rb in zip(self.matrix, other.matrix)
        )
        return FeldmanCommitment(matrix, g)

    def column_vector(self, index: int = 0) -> "FeldmanVector":
        """The univariate commitment to f(., index); ``index=0`` commits to
        the polynomial whose evaluations are the nodes' final shares."""
        return self._collapse(index, axis=1)

    def batch_verify_points(
        self,
        i: int,
        items: list[tuple[int, int]],
        rng: random.Random | None = None,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Batch verify-point: many ``(m, alpha)`` claims for receiver
        ``i`` in one randomized-linear-combination multiexp, with
        per-item fallback identifying the bad senders."""
        return self._collapse(i, axis=1).batch_verify(items, rng=rng)

    @property
    def num_entries(self) -> int:
        return len(self.matrix) ** 2

    def byte_size(self) -> int:
        """Serialized size: (t+1)^2 group elements."""
        return self.num_entries * self.group.element_bytes


@dataclass(frozen=True)
class FeldmanVector:
    """Univariate Feldman commitment: entries[l] = g^{a_l}."""

    entries: tuple
    group: AbstractGroup
    _cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def degree(self) -> int:
        return len(self.entries) - 1

    @classmethod
    def commit(cls, poly: Polynomial, group: AbstractGroup) -> "FeldmanVector":
        if poly.q != group.q:
            raise ValueError("polynomial field does not match group order")
        return cls(tuple(group.commit(c) for c in poly.coeffs), group)

    def _batcher(self):
        """The cached batch verifier; its shared Straus tables also back
        every single-share check against this vector."""
        batcher = self._cache.get("batch")
        if batcher is None:
            batcher = self.group.batch_verifier(self.entries)
            self._cache["batch"] = batcher
        return batcher

    def _shared_bases(self):
        return self._batcher()._shared_bases()

    def verify_share(self, i: int, share: int) -> bool:
        """True iff g^share == prod_l entries[l]^{i^l}."""
        return self._batcher().check_one(i, share)

    def batch_verify(
        self,
        items: list[tuple[int, int]],
        rng: random.Random | None = None,
    ) -> tuple[list[tuple[int, int]], list[int]]:
        """Verify many ``(i, share)`` claims in one randomized-linear-
        combination check; returns ``(good, bad_indices)`` with the bad
        senders pinpointed by per-item fallback on mismatch."""
        return self._batcher().verify(items, rng=rng)

    def evaluate_in_exponent(self, i: int) -> int:
        """g^{a(i)} computed from the commitment alone (memoized; the
        service layer evaluates the same key commitment at the same
        signer indices for every request)."""
        key = ("eval", i % self.group.q)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = self._shared_bases().power_row(i)
        return cached

    def public_key(self) -> int:
        """g^{a_0}."""
        return self.entries[0]

    def combine(self, other: "FeldmanVector") -> "FeldmanVector":
        if self.degree != other.degree or self.group != other.group:
            raise ValueError("incompatible commitments")
        g = self.group
        return FeldmanVector(
            tuple(g.mul(a, b) for a, b in zip(self.entries, other.entries)), g
        )

    def byte_size(self) -> int:
        return len(self.entries) * self.group.element_bytes


def share_verifier(
    commitment: FeldmanCommitment | FeldmanVector,
) -> FeldmanVector:
    """The univariate vector validating final shares, from either
    commitment shape (matrix for VSS/DKG, vector for renewal)."""
    if isinstance(commitment, FeldmanCommitment):
        return commitment.column_vector(0)
    return commitment
