"""Feldman commitments and the HybridVSS verification predicates (§3).

The dealer commits to the symmetric bivariate polynomial ``f`` by
publishing the matrix ``C`` with ``C_jl = g^{f_jl}``.  Two predicates
from Fig. 1 are implemented verbatim:

* ``verify-poly(C, i, a)`` — the row polynomial ``a`` handed to node
  ``P_i`` is consistent with ``C``:
  ``g^{a_l} == prod_j (C_jl)^{i^j}`` for all ``l in [0, t]``.
* ``verify-point(C, i, m, alpha)`` — a point ``alpha`` relayed by node
  ``P_m`` equals ``f(m, i)``:
  ``g^alpha == prod_{j,l} (C_jl)^{m^j i^l}``.

A univariate variant (:class:`FeldmanVector`) commits to a degree-t
polynomial by its coefficient exponentiations; it is used by the Rec
protocol to validate shares, by share renewal (the ``V_l`` values of
§5.2), and by the synchronous baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.bivariate import BivariatePolynomial
from repro.crypto.groups import SchnorrGroup
from repro.crypto.polynomials import Polynomial


@dataclass(frozen=True)
class FeldmanCommitment:
    """Commitment matrix C with C[j][l] = g^{f_jl} for a bivariate f."""

    matrix: tuple[tuple[int, ...], ...]
    group: SchnorrGroup

    def __post_init__(self) -> None:
        if any(len(row) != len(self.matrix) for row in self.matrix):
            raise ValueError("commitment matrix must be square")

    @property
    def degree(self) -> int:
        return len(self.matrix) - 1

    @classmethod
    def commit(
        cls, poly: BivariatePolynomial, group: SchnorrGroup
    ) -> "FeldmanCommitment":
        """Compute C_jl = g^{f_jl} for every coefficient of ``poly``."""
        if poly.q != group.q:
            raise ValueError("polynomial field does not match group order")
        matrix = tuple(
            tuple(group.commit(c) for c in row) for row in poly.coeffs
        )
        return cls(matrix, group)

    def verify_poly(self, i: int, a: Polynomial) -> bool:
        """Fig. 1 predicate verify-poly(C, i, a).

        True iff ``a`` is the correct row polynomial f(i, .) under C.
        """
        t = self.degree
        if a.degree != t or a.q != self.group.q:
            return False
        g = self.group
        i_pows = [pow(i, j, g.q) for j in range(t + 1)]
        for ell in range(t + 1):
            expected = 1
            for j in range(t + 1):
                expected = g.mul(expected, g.power(self.matrix[j][ell], i_pows[j]))
            if g.commit(a.coeffs[ell]) != expected:
                return False
        return True

    def verify_point(self, i: int, m: int, alpha: int) -> bool:
        """Fig. 1 predicate verify-point(C, i, m, alpha).

        True iff alpha = f(m, i) under the committed f.
        """
        g = self.group
        t = self.degree
        m_pows = [pow(m, j, g.q) for j in range(t + 1)]
        i_pows = [pow(i, ell, g.q) for ell in range(t + 1)]
        expected = 1
        for j in range(t + 1):
            for ell in range(t + 1):
                e = (m_pows[j] * i_pows[ell]) % g.q
                expected = g.mul(expected, g.power(self.matrix[j][ell], e))
        return g.commit(alpha) == expected

    def verify_share(self, i: int, share: int) -> bool:
        """True iff ``share`` = f(i, 0): the final VSS share of node i.

        Used by Rec to filter bad shares before interpolation.
        """
        return self.verify_point(0, i, share)

    def public_key(self) -> int:
        """g^{f_00} = g^s: the public counterpart of the shared secret."""
        return self.matrix[0][0]

    def share_commitment(self, i: int) -> int:
        """g^{f(i,0)}: the public verification value for node i's share."""
        g = self.group
        t = self.degree
        acc = 1
        i_pows = [pow(i, j, g.q) for j in range(t + 1)]
        for j in range(t + 1):
            acc = g.mul(acc, g.power(self.matrix[j][0], i_pows[j]))
        return acc

    def combine(self, other: "FeldmanCommitment") -> "FeldmanCommitment":
        """Entry-wise product: commitment to the sum of the two committed
        polynomials (DKG Fig. 2: ``C_pq <- prod_d (C_d)_pq``)."""
        if self.degree != other.degree or self.group != other.group:
            raise ValueError("incompatible commitments")
        g = self.group
        matrix = tuple(
            tuple(g.mul(a, b) for a, b in zip(ra, rb))
            for ra, rb in zip(self.matrix, other.matrix)
        )
        return FeldmanCommitment(matrix, g)

    def column_vector(self, index: int = 0) -> "FeldmanVector":
        """The univariate commitment to f(., index); ``index=0`` commits to
        the polynomial whose evaluations are the nodes' final shares."""
        g = self.group
        t = self.degree
        idx_pows = [pow(index, ell, g.q) for ell in range(t + 1)]
        entries = []
        for j in range(t + 1):
            acc = 1
            for ell in range(t + 1):
                acc = g.mul(acc, g.power(self.matrix[j][ell], idx_pows[ell]))
            entries.append(acc)
        return FeldmanVector(tuple(entries), g)

    @property
    def num_entries(self) -> int:
        return len(self.matrix) ** 2

    def byte_size(self) -> int:
        """Serialized size: (t+1)^2 group elements."""
        return self.num_entries * self.group.element_bytes


@dataclass(frozen=True)
class FeldmanVector:
    """Univariate Feldman commitment: entries[l] = g^{a_l}."""

    entries: tuple[int, ...]
    group: SchnorrGroup

    @property
    def degree(self) -> int:
        return len(self.entries) - 1

    @classmethod
    def commit(cls, poly: Polynomial, group: SchnorrGroup) -> "FeldmanVector":
        if poly.q != group.q:
            raise ValueError("polynomial field does not match group order")
        return cls(tuple(group.commit(c) for c in poly.coeffs), group)

    def verify_share(self, i: int, share: int) -> bool:
        """True iff g^share == prod_l entries[l]^{i^l}."""
        g = self.group
        expected = 1
        for ell, entry in enumerate(self.entries):
            expected = g.mul(expected, g.power(entry, pow(i, ell, g.q)))
        return g.commit(share) == expected

    def evaluate_in_exponent(self, i: int) -> int:
        """g^{a(i)} computed from the commitment alone."""
        g = self.group
        acc = 1
        for ell, entry in enumerate(self.entries):
            acc = g.mul(acc, g.power(entry, pow(i, ell, g.q)))
        return acc

    def public_key(self) -> int:
        """g^{a_0}."""
        return self.entries[0]

    def combine(self, other: "FeldmanVector") -> "FeldmanVector":
        if self.degree != other.degree or self.group != other.group:
            raise ValueError("incompatible commitments")
        g = self.group
        return FeldmanVector(
            tuple(g.mul(a, b) for a, b in zip(self.entries, other.entries)), g
        )

    def byte_size(self) -> int:
        return len(self.entries) * self.group.element_bytes
