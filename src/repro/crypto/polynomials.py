"""Univariate polynomials over Z_q and Lagrange interpolation.

Shamir secret sharing (and everything built on it in this package)
works with degree-``t`` polynomials over the scalar field Z_q of
whichever group backend is in play — the modulus is the subgroup order
for modp and the curve order for secp256k1, so this module is
backend-independent by construction (scalars are plain ints either
way).  Polynomials are represented by coefficient lists
``[a_0, a_1, ..., a_t]`` so that ``a(y) = sum a_l * y**l``; all
arithmetic is mod ``q``.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class Polynomial:
    """An immutable univariate polynomial over Z_q.

    ``coeffs[l]`` is the coefficient of ``y**l``.  The zero polynomial
    is represented as ``(0,)`` so ``degree`` is always well defined for
    sharing purposes (a constant polynomial has degree 0).
    """

    coeffs: tuple[int, ...]
    q: int

    def __post_init__(self) -> None:
        if not self.coeffs:
            object.__setattr__(self, "coeffs", (0,))
        object.__setattr__(
            self, "coeffs", tuple(c % self.q for c in self.coeffs)
        )

    @property
    def degree(self) -> int:
        """Formal degree: len(coeffs) - 1 (leading zeros are kept, because
        a sharing polynomial's *capacity* t matters, not its true degree)."""
        return len(self.coeffs) - 1

    def evaluate(self, y: int) -> int:
        """Horner evaluation of the polynomial at ``y`` mod q."""
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * y + c) % self.q
        return acc

    def __call__(self, y: int) -> int:
        return self.evaluate(y)

    def add(self, other: "Polynomial") -> "Polynomial":
        if self.q != other.q:
            raise ValueError("polynomials over different fields")
        n = max(len(self.coeffs), len(other.coeffs))
        a = list(self.coeffs) + [0] * (n - len(self.coeffs))
        b = list(other.coeffs) + [0] * (n - len(other.coeffs))
        return Polynomial(tuple((x + y) % self.q for x, y in zip(a, b)), self.q)

    def scale(self, k: int) -> "Polynomial":
        """Multiply every coefficient by the scalar ``k``."""
        return Polynomial(tuple((c * k) % self.q for c in self.coeffs), self.q)

    @property
    def constant_term(self) -> int:
        """a(0): the shared secret in Shamir-style sharings."""
        return self.coeffs[0]

    @classmethod
    def random(
        cls,
        degree: int,
        q: int,
        rng: random.Random,
        constant_term: int | None = None,
    ) -> "Polynomial":
        """Uniformly random degree-``degree`` polynomial; optionally with a
        fixed constant term (the secret being shared)."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coeffs = [rng.randrange(q) for _ in range(degree + 1)]
        if constant_term is not None:
            coeffs[0] = constant_term % q
        return cls(tuple(coeffs), q)


@lru_cache(maxsize=4096)
def _lagrange_cached(
    indices: tuple[int, ...], x: int, q: int
) -> tuple[int, ...]:
    if len(set(i % q for i in indices)) != len(indices):
        raise ValueError("duplicate interpolation indices")
    coeffs = []
    for j, i_j in enumerate(indices):
        num, den = 1, 1
        for m, i_m in enumerate(indices):
            if m == j:
                continue
            num = (num * (x - i_m)) % q
            den = (den * (i_j - i_m)) % q
        coeffs.append((num * pow(den, -1, q)) % q)
    return tuple(coeffs)


def lagrange_coefficients(
    indices: Sequence[int], x: int, q: int
) -> list[int]:
    """Lagrange coefficients lambda_j for interpolating at point ``x``
    from the evaluation points in ``indices``.

    Given values v_j = a(i_j) for distinct points i_j, the interpolated
    value is ``a(x) = sum lambda_j * v_j`` where::

        lambda_j = prod_{m != j} (x - i_m) / (i_j - i_m)   (mod q)

    Memoized per ``(indices, x, q)``: the same stable signer subsets
    recur on every signature the serving layer combines and on every
    ``reconstruct_secret``, and each entry otherwise costs O(k) modular
    inversions and O(k^2) multiplications.

    Raises ValueError on duplicate indices (interpolation undefined).
    """
    return list(_lagrange_cached(tuple(indices), x, q))


def interpolate_at(
    points: Iterable[tuple[int, int]], x: int, q: int
) -> int:
    """Interpolate the unique low-degree polynomial through ``points``
    (pairs ``(i, a(i))``) and evaluate it at ``x``, all mod q."""
    pts = list(points)
    indices = [i for i, _ in pts]
    lambdas = lagrange_coefficients(indices, x, q)
    return sum(lam * v for lam, (_, v) in zip(lambdas, pts)) % q


def interpolate_polynomial(
    points: Iterable[tuple[int, int]], q: int
) -> Polynomial:
    """Full Lagrange interpolation: recover the coefficient vector of the
    unique polynomial of degree < len(points) through the given points.

    Used by HybridVSS nodes to reconstruct their row polynomial from
    echo/ready points (Fig. 1: "Lagrange-interpolate a from A_C").
    """
    pts = list(points)
    if not pts:
        raise ValueError("cannot interpolate from zero points")
    if len(set(i % q for i, _ in pts)) != len(pts):
        raise ValueError("duplicate interpolation indices")
    n = len(pts)
    # result accumulates sum over j of v_j * basis_j(y)
    result = [0] * n
    for j, (i_j, v_j) in enumerate(pts):
        # basis polynomial prod_{m != j} (y - i_m) / (i_j - i_m)
        basis = [1]
        den = 1
        for m, (i_m, _) in enumerate(pts):
            if m == j:
                continue
            # multiply basis by (y - i_m)
            new = [0] * (len(basis) + 1)
            for k, c in enumerate(basis):
                new[k] = (new[k] - c * i_m) % q
                new[k + 1] = (new[k + 1] + c) % q
            basis = new
            den = (den * (i_j - i_m)) % q
        scale = (v_j * pow(den, -1, q)) % q
        for k, c in enumerate(basis):
            result[k] = (result[k] + c * scale) % q
    return Polynomial(tuple(result), q)
