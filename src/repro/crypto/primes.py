"""Primality testing and Schnorr-group parameter generation.

The paper's cryptographic setting (§2.3) is a multiplicative subgroup
``G`` of ``Z_p^*`` of prime order ``q`` with ``q | (p - 1)`` and a
generator ``g``.  This module provides the number-theoretic substrate:
a deterministic Miller--Rabin primality test (with the proven
deterministic witness sets for small inputs and a seeded witness choice
for large ones) and a deterministic parameter generator so that test
fixtures are reproducible.

Nothing here depends on the rest of the package.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# Deterministic Miller-Rabin witness sets.  Testing against these bases is
# *proven* correct for all inputs below the associated bound (Sorenson &
# Webster 2015 for the largest entry).
_DETERMINISTIC_WITNESSES: list[tuple[int, tuple[int, ...]]] = [
    (2_047, (2,)),
    (1_373_653, (2, 3)),
    (9_080_191, (31, 73)),
    (25_326_001, (2, 3, 5)),
    (3_215_031_751, (2, 3, 5, 7)),
    (4_759_123_141, (2, 7, 61)),
    (1_122_004_669_633, (2, 13, 23, 1662803)),
    (2_152_302_898_747, (2, 3, 5, 7, 11)),
    (3_474_749_660_383, (2, 3, 5, 7, 11, 13)),
    (341_550_071_728_321, (2, 3, 5, 7, 11, 13, 17)),
    (3_825_123_056_546_413_051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318_665_857_834_031_151_167_461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``n`` passes one Miller-Rabin round with base ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Primality test: deterministic below 3.3e24, Miller-Rabin above.

    For inputs below the largest proven bound this is exact.  Above it,
    ``rounds`` random bases give an error probability below 4**-rounds,
    negligible for the security parameters used here.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return all(_miller_rabin_round(n, a, d, r) for a in witnesses)
    rng = rng or random.Random(n & 0xFFFFFFFF)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


@dataclass(frozen=True)
class SchnorrParams:
    """Parameters (p, q, g) for a Schnorr group: q | p-1, g generates
    the order-q subgroup of Z_p^*."""

    p: int
    q: int
    g: int

    def validate(self) -> None:
        """Raise ValueError unless (p, q, g) is a well-formed Schnorr group."""
        if not is_prime(self.p):
            raise ValueError("p is not prime")
        if not is_prime(self.q):
            raise ValueError("q is not prime")
        if (self.p - 1) % self.q != 0:
            raise ValueError("q does not divide p - 1")
        if not (1 < self.g < self.p):
            raise ValueError("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("g does not have order dividing q")
        if self.g == 1 or pow(self.g, 1, self.p) == 1:
            raise ValueError("g is the identity")


def generate_schnorr_params(
    q_bits: int, p_bits: int | None = None, seed: int = 0
) -> SchnorrParams:
    """Deterministically generate Schnorr-group parameters.

    Finds a ``q_bits``-bit prime ``q`` and then a prime ``p = k*q + 1``
    of roughly ``p_bits`` bits (default ``2 * q_bits``), then a generator
    of the order-``q`` subgroup.  The same ``(q_bits, p_bits, seed)``
    always yields the same parameters, which keeps test fixtures and
    benchmarks reproducible.
    """
    if q_bits < 8:
        raise ValueError("q_bits must be at least 8")
    p_bits = p_bits or 2 * q_bits
    if p_bits < q_bits + 2:
        raise ValueError("p_bits must exceed q_bits by at least 2")
    rng = random.Random(("schnorr", q_bits, p_bits, seed).__repr__())

    while True:
        q = rng.getrandbits(q_bits) | (1 << (q_bits - 1)) | 1
        if not is_prime(q):
            continue
        # Search for k such that p = k*q + 1 is prime and p has p_bits bits.
        k_bits = p_bits - q_bits
        for _ in range(4096):
            k = rng.getrandbits(k_bits) | (1 << (k_bits - 1))
            if k % 2 == 1:
                k += 1  # keep p odd: p = k*q + 1 with k even
            p = k * q + 1
            if p.bit_length() != p_bits:
                continue
            if is_prime(p):
                g = _find_generator(p, q, rng)
                params = SchnorrParams(p=p, q=q, g=g)
                params.validate()
                return params
        # extremely unlikely: retry with a fresh q


def _find_generator(p: int, q: int, rng: random.Random) -> int:
    """Find a generator of the order-q subgroup of Z_p^*."""
    k = (p - 1) // q
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, k, p)
        if g != 1:
            return g
