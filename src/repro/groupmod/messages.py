"""Group modification messages and proposals (§6)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.feldman import FeldmanVector
from repro.vss.messages import WIRE_FRAME_OVERHEAD

# Codec v4 proposal frame body: action u8 + 2-byte index + two biased
# u8 deltas (repro.net.wire keeps these widths in sync).
_PROPOSAL_BODY_BYTES = 5
# Node-Add request body: 2-byte index + 4-byte tau.
_ADD_REQUEST_BODY_BYTES = 6


@dataclass(frozen=True)
class ModProposal:
    """A commutative group-modification proposal (§6.1).

    ``action`` is ``"add"`` or ``"remove"``; ``node`` the affected
    index.  ``t_delta``/``f_delta`` carry the attached threshold /
    crash-limit modification request — deltas rather than absolute
    values, so any set of agreed proposals composes commutatively
    (the paper's reason for avoiding atomic broadcast).
    """

    action: str
    node: int
    t_delta: int = 0
    f_delta: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("add", "remove"):
            raise ValueError("action must be 'add' or 'remove'")
        if self.node < 1:
            raise ValueError("node index must be positive")

    def as_bytes(self) -> bytes:
        return (
            f"{self.action}|{self.node}|{self.t_delta}|{self.f_delta}".encode()
        )


@dataclass(frozen=True)
class ProposeInput:
    """Operator: put this proposal to the group."""

    proposal: ModProposal

    kind = "groupmod.in.propose"


@dataclass(frozen=True)
class ProposalMsg:
    """Proposer -> all: the initial broadcast of a proposal."""

    proposal: ModProposal

    kind = "groupmod.propose"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + _PROPOSAL_BODY_BYTES


@dataclass(frozen=True)
class ProposalEchoMsg:
    """Reliable-broadcast echo: the sender agrees with the proposal."""

    proposal: ModProposal

    kind = "groupmod.echo"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + _PROPOSAL_BODY_BYTES


@dataclass(frozen=True)
class ProposalReadyMsg:
    """Reliable-broadcast ready for the proposal."""

    proposal: ModProposal

    kind = "groupmod.ready"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + _PROPOSAL_BODY_BYTES


@dataclass(frozen=True)
class ProposalDeliveredOutput:
    """A proposal entered this node's modification queue (§6.1)."""

    proposal: ModProposal

    kind = "groupmod.out.delivered"


# -- node addition (§6.2) -------------------------------------------------------


@dataclass(frozen=True)
class NodeAddRequestMsg:
    """Broadcast of a Node-Add request; nodes wait for t+1 identical
    requests before resharing (mirrors the renewal tick gate)."""

    new_node: int
    tau: int

    kind = "groupmod.add-request"

    def byte_size(self) -> int:
        return WIRE_FRAME_OVERHEAD + _ADD_REQUEST_BODY_BYTES


@dataclass(frozen=True)
class NodeAddInput:
    """Operator: start the node-addition protocol for ``new_node``."""

    new_node: int
    tau: int

    kind = "groupmod.in.add"


@dataclass(frozen=True)
class SubshareMsg:
    """P_i -> P_new: the subshare s_{i,new} with its commitment vector V."""

    tau: int
    vector: FeldmanVector
    subshare: int
    size: int = field(compare=False, default=0)

    kind = "groupmod.subshare"

    def byte_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class JoinedOutput:
    """The new node's result: its share of the existing secret."""

    tau: int
    share: int
    vector: FeldmanVector

    kind = "groupmod.out.joined"
