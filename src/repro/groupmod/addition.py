"""Node addition without share renewal (§6.2).

The paper's three modifications to the DKG:

1. On a Node-Add request, node ``P_i`` reshares its *current* share
   ``s_{i, tau}`` (not a random value) and broadcasts the request; it
   proceeds only after seeing ``t + 1`` identical requests.
2. On deciding ``Q`` (of size ``t + 1``) it Lagrange-interpolates the
   received subshares *for index new* — ``s_{i,new} =
   sum_d lambda_d^(Q,new) s_{i,d}`` — and hands ``P_new`` the subshare
   together with the vector commitment
   ``V_l = prod_d ((C_d)_{l0})^(lambda_d^(Q,new))``.
3. ``P_new`` collects ``t + 1`` subshares under the same ``V``,
   verifies each against ``V``, and interpolates them at 0 to obtain
   its share ``s_new``.

The subshares lie on a fresh degree-t polynomial ``h`` with
``h(0) = s_new``; existing nodes' shares and the system commitment are
untouched, so additions compose with (or substitute for) renewal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.polynomials import lagrange_coefficients
from repro.crypto.shares import reconstruct_raw
from repro.sim.adversary import Adversary
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.node import Context, ProtocolNode
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation
from repro.dkg.config import DkgConfig
from repro.dkg.node import DkgNode
from repro.proactive.renewal import share_commitment_at
from repro.groupmod.messages import (
    JoinedOutput,
    NodeAddInput,
    NodeAddRequestMsg,
    SubshareMsg,
)


class AdditionNode(DkgNode):
    """An existing member participating in node addition.

    Supports adding several nodes simultaneously (§6.2: run the
    interpolate-and-deliver modifications "separately for each node"):
    ``new_nodes`` lists every joining index; one subshare + commitment
    vector is produced per joiner from the same decided set Q.
    """

    def __init__(
        self,
        node_id: int,
        config: DkgConfig,
        keystore: KeyStore,
        ca: CertificateAuthority,
        new_node: int | list[int],
        current_share: int,
        current_commitment: FeldmanCommitment | FeldmanVector | None = None,
        tau: int = 0,
    ):
        super().__init__(
            node_id, config, keystore, ca, tau=tau, secret=current_share
        )
        self.new_nodes = (
            [new_node] if isinstance(new_node, int) else list(new_node)
        )
        self.new_node = self.new_nodes[0]
        if current_commitment is not None:
            for dealer, session in self.sessions.items():
                session.expected_secret_commitment = share_commitment_at(
                    current_commitment, dealer
                )
        self.add_requests: set[int] = set()
        self._buffer: list[tuple[int, Any]] = []
        self.sent_subshare = False

    @property
    def _gate_open(self) -> bool:
        """t + 1 identical Node-Add requests seen (own included)."""
        return len(self.add_requests) >= self.config.t + 1

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, NodeAddInput):
            self._on_add_request_local(payload, ctx)
        else:
            super().on_operator(payload, ctx)

    def _on_add_request_local(self, payload: NodeAddInput, ctx: Context) -> None:
        """Modification 1: reshare s_{i, tau}; broadcast the request."""
        if self.started or payload.new_node not in self.new_nodes:
            return
        self.started = True
        self.sessions[self.node_id].start_dealing(self.secret, ctx)
        self.sessions[self.node_id].erase_dealt_polynomials()
        self.add_requests.add(self.node_id)
        # Logged for help-driven retransmission (crash recovery).
        self._log_and_broadcast(ctx, NodeAddRequestMsg(self.new_node, self.tau))
        self._drain_buffer(ctx)

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if isinstance(payload, NodeAddRequestMsg):
            if payload.new_node in self.new_nodes and payload.tau == self.tau:
                self.add_requests.add(sender)
                self._drain_buffer(ctx)
            return
        if not self._gate_open:
            self._buffer.append((sender, payload))
            return
        super().on_message(sender, payload, ctx)

    def _drain_buffer(self, ctx: Context) -> None:
        if not self._gate_open or not self._buffer:
            return
        pending, self._buffer = self._buffer, []
        for sender, payload in pending:
            super().on_message(sender, payload, ctx)

    # Modification 2: interpolate *for each new index*; deliver results.
    def _try_complete(self, ctx: Context) -> None:
        if self.sent_subshare or self.decided_q is None:
            return
        outputs = []
        for dealer in self.decided_q:
            session = self.sessions.get(dealer)
            if session is None or session.completed is None:
                return
            outputs.append((dealer, session.completed))
        group = self.config.group
        dealers = [d for d, _ in outputs]
        self._stop_timer(ctx)
        self.sent_subshare = True
        for new in self.new_nodes:
            lambdas = lagrange_coefficients(dealers, new, group.q)
            subshare = (
                sum(lam * out.share for lam, (_, out) in zip(lambdas, outputs))
                % group.q
            )
            entries = [
                group.multiexp(
                    (out.commitment.matrix[ell][0], lam)
                    for lam, (_, out) in zip(lambdas, outputs)
                )
                for ell in range(self.config.t + 1)
            ]
            vector = FeldmanVector(tuple(entries), group)
            size = 6 + vector.byte_size() + group.scalar_bytes
            ctx.send(new, SubshareMsg(self.tau, vector, subshare, size))


@dataclass
class JoiningNode(ProtocolNode):
    """The new node P_new: collect, verify and interpolate subshares."""

    t: int = 0
    group_q: int = 0
    expected_share_pk: int | None = None
    joined: JoinedOutput | None = None

    def __post_init__(self) -> None:
        self._by_vector: dict[FeldmanVector, dict[int, int]] = {}

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if not isinstance(payload, SubshareMsg) or self.joined is not None:
            return
        vector = payload.vector
        # Modification 3: only accept subshares verifying against V.
        if not vector.verify_share(sender, payload.subshare):
            return
        # Cross-check against the system commitment: V must commit to a
        # polynomial whose value at 0 is *our* share of the old secret.
        if (
            self.expected_share_pk is not None
            and vector.public_key() != self.expected_share_pk
        ):
            return
        bucket = self._by_vector.setdefault(vector, {})
        if sender in bucket:
            return
        bucket[sender] = payload.subshare
        if len(bucket) == self.t + 1:
            share = reconstruct_raw(bucket.items(), self.group_q)
            self.joined = JoinedOutput(payload.tau, share, vector)
            ctx.output(self.joined)


@dataclass
class AdditionResult:
    """Outcome of one node-addition run."""

    new_node: int
    share: int | None
    vector: FeldmanVector | None
    metrics: Metrics
    simulation: Simulation


def run_node_additions(
    config: DkgConfig,
    shares: dict[int, int],
    commitment: FeldmanCommitment | FeldmanVector,
    new_nodes: list[int],
    seed: int = 0,
    tau: int = 1,
    delay_model: DelayModel | None = None,
    adversary: Adversary | None = None,
    until: float | None = None,
) -> dict[int, AdditionResult]:
    """Simulate §6.2 for one or more joiners simultaneously.

    ``shares``/``commitment`` come from a prior DKG or renewal phase.
    Each returned share verifies against the *existing* commitment at
    the joiner's index — the sharing polynomial is unchanged.
    """
    members = config.vss().indices
    for new_node in new_nodes:
        if new_node in members:
            raise ValueError(f"node {new_node} is already a member")
    if len(set(new_nodes)) != len(new_nodes):
        raise ValueError("duplicate joiner indices")
    sim = Simulation(
        delay_model=delay_model or UniformDelay(),
        adversary=adversary or Adversary.passive(config.t, config.f),
        seed=seed,
    )
    ca = CertificateAuthority(config.group)
    enroll_rng = random.Random(("add-pki", seed).__repr__())
    for i in members:
        keystore = KeyStore.enroll(i, ca, enroll_rng)
        sim.add_node(
            AdditionNode(
                i,
                config,
                keystore,
                ca,
                new_node=list(new_nodes),
                current_share=shares[i],
                current_commitment=commitment,
                tau=tau,
            )
        )
    joiners = {}
    for new_node in new_nodes:
        joining = JoiningNode(
            new_node,
            t=config.t,
            group_q=config.group.q,
            expected_share_pk=share_commitment_at(commitment, new_node),
        )
        sim.add_node(joining)
        joiners[new_node] = joining
    for i in members:
        sim.inject(i, NodeAddInput(new_nodes[0], tau), at=0.0)
    sim.run(until=until)
    return {
        new_node: AdditionResult(
            new_node=new_node,
            share=joining.joined.share if joining.joined else None,
            vector=joining.joined.vector if joining.joined else None,
            metrics=sim.metrics,
            simulation=sim,
        )
        for new_node, joining in joiners.items()
    }


def run_node_addition(
    config: DkgConfig,
    shares: dict[int, int],
    commitment: FeldmanCommitment | FeldmanVector,
    new_node: int,
    seed: int = 0,
    tau: int = 1,
    delay_model: DelayModel | None = None,
    adversary: Adversary | None = None,
    until: float | None = None,
) -> AdditionResult:
    """Single-joiner convenience wrapper over :func:`run_node_additions`."""
    return run_node_additions(
        config, shares, commitment, [new_node],
        seed=seed, tau=tau, delay_model=delay_model,
        adversary=adversary, until=until,
    )[new_node]
