"""Group modification agreement (§6.1).

A Bracha-style reliable broadcast per proposal: the proposer sends the
proposal to everyone; nodes that *agree* with it (an application policy
— by default, anything that keeps ``n >= 3t + 2f + 1`` satisfiable)
echo it; an echo quorum triggers ready; ``t + 1`` readies amplify; at
``n - t - f`` readies the proposal enters the node's modification
queue, to be applied at the next phase change.

Proposals are commutative (adds/removes with t/f *deltas*), so nodes
may deliver them in different orders and still converge on the same
phase-change reconfiguration — the property the paper uses to avoid
atomic broadcast.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro import quorum
from repro.sim.node import Context, ProtocolNode
from repro.vss.config import VssConfig
from repro.groupmod.messages import (
    ModProposal,
    NodeAddInput,
    NodeAddRequestMsg,
    ProposalDeliveredOutput,
    ProposalEchoMsg,
    ProposalMsg,
    ProposalReadyMsg,
    ProposeInput,
)


def default_policy(config: VssConfig, proposal: ModProposal) -> bool:
    """Agree iff the proposal keeps the resilience bound satisfiable.

    n' = n ± 1, t' = t + t_delta, f' = f + f_delta must satisfy
    n' >= 3t' + 2f' + 1 with non-negative t', f'.
    """
    n = config.n + (1 if proposal.action == "add" else -1)
    t = config.t + proposal.t_delta
    f = config.f + proposal.f_delta
    if proposal.action == "add" and proposal.node in config.indices:
        return False
    if proposal.action == "remove" and proposal.node not in config.indices:
        return False
    return t >= 0 and f >= 0 and quorum.satisfies_resilience(n, t, f)


@dataclass
class _ProposalState:
    echoes: set[int] = field(default_factory=set)
    readies: set[int] = field(default_factory=set)
    echoed: bool = False
    readied: bool = False
    delivered: bool = False


@dataclass
class GroupModAgreementNode(ProtocolNode):
    """One node of the modification agreement protocol."""

    config: VssConfig = None  # type: ignore[assignment]
    policy: Callable[[VssConfig, ModProposal], bool] = default_policy
    queue: list[ModProposal] = field(default_factory=list)
    _states: dict[ModProposal, _ProposalState] = field(default_factory=dict)

    def _state(self, proposal: ModProposal) -> _ProposalState:
        return self._states.setdefault(proposal, _ProposalState())

    def on_operator(self, payload: Any, ctx: Context) -> None:
        if isinstance(payload, ProposeInput):
            for j in self.config.indices:
                ctx.send(j, ProposalMsg(payload.proposal))
        else:
            raise TypeError(f"unexpected operator input {payload!r}")

    def on_message(self, sender: int, payload: Any, ctx: Context) -> None:
        if isinstance(payload, ProposalMsg):
            self._on_proposal(payload.proposal, ctx)
        elif isinstance(payload, ProposalEchoMsg):
            self._on_echo(sender, payload.proposal, ctx)
        elif isinstance(payload, ProposalReadyMsg):
            self._on_ready(sender, payload.proposal, ctx)

    def _on_proposal(self, proposal: ModProposal, ctx: Context) -> None:
        state = self._state(proposal)
        if state.echoed:
            return
        # "nodes who agree with the proposal continue with echo messages"
        if not self.policy(self.config, proposal):
            return
        state.echoed = True
        for j in self.config.indices:
            ctx.send(j, ProposalEchoMsg(proposal))

    def _on_echo(self, sender: int, proposal: ModProposal, ctx: Context) -> None:
        state = self._state(proposal)
        if sender in state.echoes:
            return
        state.echoes.add(sender)
        if len(state.echoes) == self.config.echo_threshold and not state.readied:
            state.readied = True
            for j in self.config.indices:
                ctx.send(j, ProposalReadyMsg(proposal))

    def _on_ready(self, sender: int, proposal: ModProposal, ctx: Context) -> None:
        state = self._state(proposal)
        if sender in state.readies:
            return
        state.readies.add(sender)
        if (
            len(state.readies) == self.config.ready_threshold
            and not state.readied
        ):
            # ready amplification (one honest ready witnessed)
            state.readied = True
            for j in self.config.indices:
                ctx.send(j, ProposalReadyMsg(proposal))
        elif (
            len(state.readies) == self.config.output_threshold
            and not state.delivered
        ):
            # "Once it receives n - t - f ready messages, a node adds
            # the proposal into its modification queue."
            state.delivered = True
            self.queue.append(proposal)
            ctx.output(ProposalDeliveredOutput(proposal))


def apply_proposals(
    members: tuple[int, ...],
    t: int,
    f: int,
    proposals: list[ModProposal],
) -> tuple[tuple[int, ...], int, int]:
    """Fold a set of agreed proposals into (members', t', f').

    Order-independent by construction: membership changes are set
    operations and t/f changes are summed deltas (§6.1 commutativity).
    Raises ValueError if the result violates n >= 3t + 2f + 1.
    """
    member_set = set(members)
    t_new, f_new = t, f
    for proposal in proposals:
        if proposal.action == "add":
            member_set.add(proposal.node)
        else:
            member_set.discard(proposal.node)
        t_new += proposal.t_delta
        f_new += proposal.f_delta
    n_new = len(member_set)
    if t_new < 0 or f_new < 0 or n_new < 3 * t_new + 2 * f_new + 1:
        raise ValueError(
            f"proposals yield invalid configuration n={n_new}, "
            f"t={t_new}, f={f_new}"
        )
    return tuple(sorted(member_set)), t_new, f_new
