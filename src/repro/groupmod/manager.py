"""Lifecycle orchestration: agreement, phase-change reconfiguration
(node removal, threshold/crash-limit modification), and mid-phase node
addition (§6).

:class:`GroupManager` is the long-lived controller a deployment
operator would run: it bootstraps the initial DKG, collects agreed
modification proposals during a phase (§6.1), applies them at the next
phase change by running a *reconfiguring* share renewal (§6.3/§6.4 —
the resharing polynomials get the new degree ``t'`` and the member set
changes), and supports §6.2 node addition inside a phase.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.crypto.feldman import FeldmanCommitment, FeldmanVector
from repro.crypto.shares import Share, reconstruct_secret
from repro.sim.adversary import Adversary
from repro.sim.metrics import Metrics
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.pki import CertificateAuthority, KeyStore
from repro.sim.runner import Simulation
from repro.dkg.config import DkgConfig
from repro.dkg.runner import DkgResult, run_dkg
from repro.proactive.messages import RenewInput
from repro.proactive.renewal import RenewalNode
from repro.groupmod.addition import AdditionResult, run_node_addition
from repro.groupmod.agreement import (
    GroupModAgreementNode,
    apply_proposals,
)
from repro.groupmod.messages import ModProposal, ProposeInput


@dataclass
class AgreementReport:
    """What one agreement round delivered at each node."""

    queues: dict[int, list[ModProposal]]
    metrics: Metrics

    def common_queue(self) -> list[ModProposal]:
        """Proposals delivered by every node (commutative, so order-free)."""
        queues = list(self.queues.values())
        if not queues:
            return []
        common = set(queues[0])
        for queue in queues[1:]:
            common &= set(queue)
        return sorted(common, key=lambda p: p.as_bytes())


class GroupManager:
    """A threshold deployment with evolving membership."""

    def __init__(self, config: DkgConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        self.phase = 0
        self.shares: dict[int, int] = {}
        self.commitment: FeldmanCommitment | FeldmanVector | None = None
        self.public_key: int | None = None
        self.pending: list[ModProposal] = []
        self._rng = random.Random(("groupmod", seed).__repr__())

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(self.config.vss().indices)

    # -- phase 0 ------------------------------------------------------------------

    def bootstrap(self, **kwargs: object) -> DkgResult:
        result = run_dkg(self.config, seed=self.seed, **kwargs)  # type: ignore[arg-type]
        if not result.completions:
            raise RuntimeError("bootstrap DKG did not complete")
        self.shares = dict(result.shares)
        self.commitment = result.commitment
        self.public_key = result.public_key
        return result

    # -- §6.1 agreement --------------------------------------------------------------

    def agree(
        self,
        proposals: dict[int, ModProposal],
        seed_offset: int = 0,
        delay_model: DelayModel | None = None,
        until: float | None = None,
    ) -> AgreementReport:
        """Run one agreement round: ``proposals`` maps proposer -> proposal.

        Proposals delivered at every node are appended to the pending
        modification queue (applied at the next phase change).
        """
        vss_config = self.config.vss()
        sim = Simulation(
            delay_model=delay_model or UniformDelay(),
            adversary=Adversary.passive(self.config.t, self.config.f),
            seed=self.seed * 31 + seed_offset + self.phase,
        )
        nodes = {
            i: GroupModAgreementNode(i, vss_config) for i in vss_config.indices
        }
        for node in nodes.values():
            sim.add_node(node)
        for proposer, proposal in proposals.items():
            sim.inject(proposer, ProposeInput(proposal), at=0.0)
        sim.run(until=until)
        report = AgreementReport(
            queues={i: list(node.queue) for i, node in nodes.items()},
            metrics=sim.metrics,
        )
        self.pending.extend(report.common_queue())
        return report

    # -- §6.2 node addition (mid-phase) --------------------------------------------------

    def add_node(
        self,
        new_node: int,
        seed_offset: int = 0,
        delay_model: DelayModel | None = None,
    ) -> AdditionResult:
        """Provide ``new_node`` a share *now* (without renewal), then
        extend the member list.  The commitment is unchanged."""
        if self.commitment is None:
            raise RuntimeError("bootstrap() must run first")
        result = run_node_addition(
            self.config,
            self.shares,
            self.commitment,
            new_node,
            seed=self.seed * 17 + seed_offset,
            tau=self.phase + 1,
            delay_model=delay_model,
        )
        if result.share is None:
            raise RuntimeError("node addition failed to deliver a share")
        new_members = tuple(sorted(set(self.members) | {new_node}))
        self.config = dataclasses.replace(
            self.config,
            n=len(new_members),
            members=new_members,
            initial_leader=min(new_members),
        )
        self.shares[new_node] = result.share
        return result

    # -- §6.3/§6.4 phase change: apply queued modifications ---------------------------------

    def phase_change(
        self,
        delay_model: DelayModel | None = None,
        crash_plan: list[tuple[float, int, float | None]] | None = None,
        until: float | None = None,
    ) -> Metrics:
        """Apply all pending proposals and renew shares for the new group.

        Node removals simply exclude the node from the resharing
        (§6.3); the resharing polynomials take the *new* degree t'
        (§6.4); the agreement still needs old_t + 1 dealer subsharings,
        so the reconfiguration DKG runs with ``q_size = old_t + 1``.
        """
        if self.commitment is None:
            raise RuntimeError("bootstrap() must run first")
        old_t = self.config.t
        new_members, new_t, new_f = apply_proposals(
            self.members, old_t, self.config.f, self.pending
        )
        self.pending = []
        self.phase += 1
        new_config = dataclasses.replace(
            self.config,
            n=len(new_members),
            t=new_t,
            f=new_f,
            members=new_members,
            initial_leader=min(new_members),
            q_size=old_t + 1,
        )
        adversary = (
            Adversary.crash_only(new_t, new_f, crash_plan)
            if crash_plan
            else Adversary.passive(new_t, new_f)
        )
        sim = Simulation(
            delay_model=delay_model or UniformDelay(),
            adversary=adversary,
            seed=self.seed * 101 + self.phase,
        )
        ca = CertificateAuthority(self.config.group)
        enroll_rng = random.Random(("gm-pki", self.seed, self.phase).__repr__())
        nodes: dict[int, RenewalNode] = {}
        for i in new_members:
            keystore = KeyStore.enroll(i, ca, enroll_rng)
            node = RenewalNode(
                i,
                new_config,
                keystore,
                ca,
                phase=self.phase,
                prev_share=self.shares.get(i),
                prev_commitment=self.commitment,
            )
            sim.add_node(node)
            nodes[i] = node
        for i in new_members:
            sim.inject(i, RenewInput(self.phase), at=0.0)
        sim.run(until=until)
        renewed = {
            i: node.renewed for i, node in nodes.items() if node.renewed is not None
        }
        if not renewed:
            raise RuntimeError("phase change renewal did not complete")
        commitments = {out.commitment for out in renewed.values()}
        if len(commitments) != 1:
            raise AssertionError("phase change consistency violation")
        # Adopt the new world: config without the q_size override.
        self.config = dataclasses.replace(new_config, q_size=None)
        self.commitment = commitments.pop()
        self.shares = {i: out.share for i, out in renewed.items()}
        return sim.metrics

    # -- oracle helper ---------------------------------------------------------------------------

    def reconstruct(self) -> int:
        if self.commitment is None:
            raise RuntimeError("no shares yet")
        shares = [Share(i, v, self.commitment) for i, v in self.shares.items()]
        return reconstruct_secret(shares, self.config.t, self.config.group.q)
