"""Group modification protocols (§6): modification agreement, node
addition, node removal, and threshold/crash-limit modification."""

from repro.groupmod.addition import (
    AdditionNode,
    AdditionResult,
    JoiningNode,
    run_node_addition,
    run_node_additions,
)
from repro.groupmod.agreement import (
    GroupModAgreementNode,
    apply_proposals,
    default_policy,
)
from repro.groupmod.manager import AgreementReport, GroupManager
from repro.groupmod.messages import (
    JoinedOutput,
    ModProposal,
    NodeAddInput,
    NodeAddRequestMsg,
    ProposalDeliveredOutput,
    ProposalEchoMsg,
    ProposalMsg,
    ProposalReadyMsg,
    ProposeInput,
    SubshareMsg,
)

__all__ = [
    "AdditionNode",
    "AdditionResult",
    "AgreementReport",
    "GroupManager",
    "GroupModAgreementNode",
    "JoinedOutput",
    "JoiningNode",
    "ModProposal",
    "NodeAddInput",
    "NodeAddRequestMsg",
    "ProposalDeliveredOutput",
    "ProposalEchoMsg",
    "ProposalMsg",
    "ProposalReadyMsg",
    "ProposeInput",
    "SubshareMsg",
    "apply_proposals",
    "default_policy",
    "run_node_addition",
    "run_node_additions",
]
